"""Tests for the unified Machine facade and the machine-model registry."""

from __future__ import annotations

import pytest

from repro.api import (
    Machine,
    RunCache,
    model_descriptions,
    model_names,
    register_model,
    resolve_model,
    unregister_model,
)
from repro.core import (
    DualScalarSimulator,
    Job,
    MachineConfig,
    MultithreadedSimulator,
    ReferenceSimulator,
    SimulationResult,
)
from repro.core.ideal import ideal_execution_time
from repro.errors import ConfigurationError
from repro.trace.dixie import trace_program

BUILTIN_MODELS = (
    "cray-style",
    "dual-scalar",
    "ideal",
    "multithreaded",
    "multithreaded-2",
    "multithreaded-3",
    "multithreaded-4",
    "reference",
)


def assert_same_result(left: SimulationResult, right: SimulationResult) -> None:
    """Two simulation runs are cycle-identical and agree on every metric."""
    assert left.cycles == right.cycles
    assert left.instructions == right.instructions
    assert left.summary() == right.summary()
    assert left.fu_state_breakdown() == right.fu_state_breakdown()


class TestRegistry:
    def test_builtin_models_are_registered(self):
        names = model_names()
        for name in BUILTIN_MODELS:
            assert name in names

    def test_descriptions_cover_builtins(self):
        descriptions = model_descriptions()
        for name in BUILTIN_MODELS:
            assert descriptions[name]

    def test_register_named_run_roundtrip(self, triad_program):
        register_model(
            "test-fast-memory",
            lambda **options: Machine.from_config(MachineConfig.reference(1, **options)),
            description="reference machine with 1-cycle memory",
        )
        try:
            machine = Machine.named("test-fast-memory")
            result = machine.run(triad_program)
            expected = ReferenceSimulator(MachineConfig.reference(1)).run(triad_program)
            assert_same_result(result, expected)
        finally:
            unregister_model("test-fast-memory")
        with pytest.raises(ConfigurationError):
            resolve_model("test-fast-memory")

    def test_duplicate_registration_rejected_unless_overwrite(self):
        register_model("test-dup", lambda **options: Machine.named("reference"))
        try:
            with pytest.raises(ConfigurationError):
                register_model("test-dup", lambda **options: Machine.named("reference"))
            register_model(
                "test-dup",
                lambda **options: Machine.named("multithreaded-2"),
                overwrite=True,
            )
            assert Machine.named("test-dup").config.num_contexts == 2
        finally:
            unregister_model("test-dup")

    def test_unknown_model_raises_with_available_names(self):
        with pytest.raises(ConfigurationError, match="reference"):
            Machine.named("no-such-machine")

    def test_factory_returning_garbage_is_rejected(self):
        register_model("test-bad-factory", lambda **options: 42)
        try:
            with pytest.raises(ConfigurationError, match="expected a Machine"):
                Machine.named("test-bad-factory")
        finally:
            unregister_model("test-bad-factory")


class TestReferenceEquivalence:
    def test_run_matches_legacy_simulator(self, triad_program):
        legacy = ReferenceSimulator(MachineConfig.reference(50)).run(triad_program)
        facade = Machine.named("reference", memory_latency=50).run(triad_program)
        assert_same_result(facade, legacy)

    def test_instruction_limit_matches_legacy(self, triad_program):
        legacy = ReferenceSimulator(MachineConfig.reference(50)).run(
            triad_program, instruction_limit=40
        )
        facade = Machine.named("reference", memory_latency=50).run(
            triad_program, instruction_limit=40
        )
        assert_same_result(facade, legacy)

    def test_from_config_selects_reference_backend(self, triad_program):
        config = MachineConfig.reference(20)
        legacy = ReferenceSimulator(config).run(triad_program)
        facade = Machine.from_config(config).run(triad_program)
        assert_same_result(facade, legacy)

    def test_workload_types_are_interchangeable(self, triad_program):
        machine = Machine.named("reference", memory_latency=50)
        from_program = machine.run(triad_program)
        from_job = machine.run(Job.from_program(triad_program))
        from_trace = machine.run(trace_program(triad_program))
        assert_same_result(from_program, from_job)
        assert_same_result(from_program, from_trace)


class TestMultithreadedEquivalence:
    def test_run_group_matches_legacy(self, triad_program, scalar_program):
        config = MachineConfig.multithreaded(2, 50)
        legacy = MultithreadedSimulator(config).run_group([triad_program, scalar_program])
        facade = Machine.named("multithreaded-2", memory_latency=50).run_group(
            [triad_program, scalar_program]
        )
        assert_same_result(facade, legacy)

    def test_run_queue_matches_legacy(self, triad_program, scalar_program):
        config = MachineConfig.multithreaded(2, 50)
        legacy = MultithreadedSimulator(config).run_job_queue(
            [triad_program, scalar_program, triad_program]
        )
        facade = Machine.from_config(config).run_queue(
            [triad_program, scalar_program, triad_program]
        )
        assert_same_result(facade, legacy)

    def test_run_single_matches_legacy(self, triad_program):
        config = MachineConfig.multithreaded(3, 50)
        legacy = MultithreadedSimulator(config).run_single(triad_program)
        facade = Machine.from_config(config).run(triad_program)
        assert_same_result(facade, legacy)

    def test_parametric_model_name(self, triad_program):
        facade = Machine.named("multithreaded", num_contexts=3)
        assert facade.config.num_contexts == 3
        assert facade.name == "multithreaded-3"


class TestDualScalarEquivalence:
    def test_run_group_matches_legacy(self, triad_program, scalar_program):
        legacy = DualScalarSimulator(MachineConfig.dual_scalar_fujitsu(50)).run_group(
            [triad_program, scalar_program]
        )
        facade = Machine.named("dual-scalar", memory_latency=50).run_group(
            [triad_program, scalar_program]
        )
        assert_same_result(facade, legacy)

    def test_run_queue_matches_legacy(self, triad_program, scalar_program):
        legacy = DualScalarSimulator(MachineConfig.dual_scalar_fujitsu(50)).run_job_queue(
            [triad_program, scalar_program]
        )
        facade = Machine.named("dual-scalar", memory_latency=50).run_queue(
            [triad_program, scalar_program]
        )
        assert_same_result(facade, legacy)

    def test_from_config_selects_dual_scalar_backend(self, triad_program):
        config = MachineConfig.dual_scalar_fujitsu(50)
        machine = Machine.from_config(config)
        assert machine.config.dual_scalar
        assert machine.run(triad_program).cycles > 0


class TestIdealEquivalence:
    def test_bound_matches_ideal_model(self, triad_program, scalar_program):
        programs = [triad_program, scalar_program]
        facade = Machine.named("ideal").run_group(programs)
        assert facade.cycles == ideal_execution_time(programs)
        assert facade.stop_reason.startswith("ideal-bound")

    def test_group_and_queue_agree(self, triad_program, scalar_program):
        machine = Machine.named("ideal")
        programs = [triad_program, scalar_program]
        assert machine.run_group(programs).cycles == machine.run_queue(programs).cycles

    def test_dual_scalar_decode_width(self, scalar_program):
        one_wide = Machine.named("ideal").run(scalar_program)
        two_wide = Machine.named("ideal", decode_width=2).run(scalar_program)
        assert two_wide.cycles <= one_wide.cycles


class TestUniformSurface:
    """Every registered builtin answers the same run/run_group/run_queue calls."""

    @pytest.mark.parametrize("name", BUILTIN_MODELS)
    def test_run_single_workload(self, name, triad_program):
        result = Machine.named(name).run(triad_program)
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0

    @pytest.mark.parametrize("name", BUILTIN_MODELS)
    def test_run_group_one_workload_per_context(self, name, triad_program, scalar_program):
        machine = Machine.named(name)
        pool = [triad_program, scalar_program]
        workloads = [pool[i % 2] for i in range(machine.config.num_contexts)]
        result = machine.run_group(workloads)
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0

    @pytest.mark.parametrize("name", BUILTIN_MODELS)
    def test_run_queue_shared_job_list(self, name, triad_program, scalar_program):
        result = Machine.named(name).run_queue([triad_program, scalar_program])
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0


class TestMachineCache:
    def test_cached_runs_are_equal_and_hit(self, triad_program):
        cache = RunCache()
        machine = Machine.named("reference", memory_latency=50, cache=cache)
        first = machine.run(triad_program)
        second = machine.run(triad_program)
        assert_same_result(first, second)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_cache_copies_are_independent(self, triad_program):
        cache = RunCache()
        machine = Machine.named("reference", memory_latency=50, cache=cache)
        first = machine.run(triad_program)
        first.workload_description = "mutated"
        second = machine.run(triad_program)
        assert second.workload_description != "mutated"

    def test_different_configs_do_not_collide(self, triad_program):
        cache = RunCache()
        fast = Machine.named("reference", memory_latency=1, cache=cache).run(triad_program)
        slow = Machine.named("reference", memory_latency=100, cache=cache).run(triad_program)
        assert fast.cycles < slow.cycles
        assert cache.hits == 0

    def test_ideal_model_options_do_not_collide(self, scalar_program):
        cache = RunCache()
        narrow = Machine.named("ideal", cache=cache).run(scalar_program)
        wide = Machine.named("ideal", decode_width=4, cache=cache).run(scalar_program)
        assert cache.hits == 0
        assert wide.cycles < narrow.cycles


class TestRunCacheThreadSafety:
    """The service's threaded HTTP front end shares one cache with worker
    completions, so concurrent get/put/len must never corrupt the cache."""

    def test_concurrent_get_put_with_eviction(self, triad_program):
        import threading

        machine = Machine.named("reference", memory_latency=50)
        result = machine.run(triad_program)
        cache = RunCache(max_entries=8)
        keys = [("key", index) for index in range(16)]
        errors = []

        def hammer(seed: int) -> None:
            try:
                for turn in range(200):
                    key = keys[(seed * 7 + turn) % len(keys)]
                    if turn % 3 == 0:
                        cache.put(key, result)
                    else:
                        hit = cache.get(key)
                        if hit is not None:
                            assert hit.cycles == result.cycles
                    len(cache)
                    key in cache
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8
        assert cache.hits + cache.misses > 0

    def test_cache_pickles_without_its_lock(self, triad_program):
        import pickle

        cache = RunCache()
        machine = Machine.named("reference", memory_latency=50, cache=cache)
        machine.run(triad_program)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 1
        clone.put(("fresh",), machine.run(triad_program))  # lock was re-armed
        assert len(clone) == 2
