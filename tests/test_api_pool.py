"""Tests for the persistent worker pool and out-of-band result shipping.

Everything here forces the pooled execution path with an explicit
:class:`WorkerPool` — the CI container often grants a single CPU, where
``run_batch(jobs=N)`` correctly degrades to the serial path and would leave
the machinery under test unexercised.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.api import RunCache, SimulationRequest, WorkerPool, run_batch, usable_cpus
from repro.api.batch import (
    CHUNKS_PER_WORKER,
    DEFAULT_INSTRUCTION_ESTIMATE,
    DEFAULT_SHM_MIN_BYTES,
    _decode_result,
    _estimate_instructions,
    _plan_chunks,
    _shm_min_bytes,
)
from repro.errors import SimulationError
from repro.api.pool import get_shared_pool, shutdown_shared_pool
from repro.core import Job
from repro.faults import FaultPlan, FaultSpec, clear_fault_plan, set_fault_plan

from tests.conftest import make_scalar_loop_program, make_vector_loop_program

WORKLOADS = {
    "triad": make_vector_loop_program("triad_prog", kernel="triad", vl=32, iterations=4),
    "scalar": make_scalar_loop_program("scalar_prog", iterations=12),
    "daxpy": make_vector_loop_program("daxpy_prog", kernel="daxpy", vl=48, iterations=3),
}


def _requests(latencies=(1, 20, 50)) -> list[SimulationRequest]:
    return [
        SimulationRequest.single(
            "reference", workload, memory_latency=latency, tag=f"{name}@{latency}"
        )
        for latency in latencies
        for name, workload in WORKLOADS.items()
    ]


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture()
def pool():
    instance = WorkerPool(2)
    yield instance
    instance.shutdown()


class _BytesCache:
    """Minimal byte-store cache (the ``ResultStore`` protocol slice)."""

    def __init__(self) -> None:
        self.blobs: dict[tuple, bytes] = {}

    def get_bytes(self, key: tuple) -> bytes | None:
        return self.blobs.get(key)

    def put_bytes(self, key: tuple, payload: bytes) -> None:
        self.blobs[key] = payload

    # run_batch probes the object protocol too
    def get(self, key: tuple):
        payload = self.blobs.get(key)
        return None if payload is None else pickle.loads(payload)

    def put(self, key: tuple, result) -> None:  # pragma: no cover - unused
        raise AssertionError("byte-capable caches must receive bytes")


class TestWorkerPool:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_warm_reuse_across_batches(self, pool):
        requests = _requests(latencies=(1,))
        first = run_batch(requests, pool=pool)
        second = run_batch(requests, pool=pool)
        assert [r.cycles for r in first] == [r.cycles for r in second]
        # one executor served both batches: the workers stayed warm
        assert pool.spawned == 1
        assert pool.alive

    def test_worker_processes_are_reused(self, pool):
        first = {pool.submit(os.getpid).result() for _ in range(8)}
        second = {pool.submit(os.getpid).result() for _ in range(8)}
        assert first and first == second
        assert all(pid != os.getpid() for pid in first)

    def test_env_fingerprint_change_respawns(self, pool, monkeypatch):
        pool.submit(os.getpid).result()
        assert pool.spawned == 1
        # flip relative to whatever a CI leg may have preset
        current = os.environ.get("REPRO_SHM_MIN_BYTES")
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "4096" if current != "4096" else "8192")
        pool.submit(os.getpid).result()
        assert pool.spawned == 2
        # unchanged fingerprint: no further respawn
        pool.submit(os.getpid).result()
        assert pool.spawned == 2

    def test_resize_only_grows(self, pool):
        pool.resize(1)
        assert pool.workers == 2
        pool.resize(3)
        assert pool.workers == 3

    def test_respawn_broken_recovers_a_crashed_executor(self, pool):
        pool.submit(os.getpid).result()
        with pytest.raises(Exception):
            pool.submit(os._exit, 13).result()
        assert pool.respawn_broken() is True
        # healthy again — and a second respawn call finds nothing to do
        assert pool.submit(os.getpid).result() != os.getpid()
        assert pool.respawn_broken() is False

    def test_shutdown_is_terminal(self, pool):
        pool.shutdown()
        assert not pool.alive
        with pytest.raises(RuntimeError):
            pool.submit(os.getpid)

    def test_usable_cpus_positive(self):
        assert usable_cpus() >= 1


class TestSharedPool:
    def test_shared_instance_is_reused_and_grown(self):
        shutdown_shared_pool()
        try:
            pool = get_shared_pool(1)
            again = get_shared_pool(2)
            assert again is pool
            assert pool.workers == 2
            # asking for fewer workers never shrinks the warm pool
            assert get_shared_pool(1).workers == 2
        finally:
            shutdown_shared_pool()

    def test_shutdown_then_fresh_instance(self):
        shutdown_shared_pool()
        try:
            first = get_shared_pool(1)
            shutdown_shared_pool()
            second = get_shared_pool(1)
            assert second is not first
            assert second.alive or not second._closed
        finally:
            shutdown_shared_pool()


class TestResultShipping:
    def _serial(self, requests):
        return run_batch(requests, jobs=1)

    def _assert_equivalent(self, serial, pooled):
        assert len(serial) == len(pooled)
        for left, right in zip(serial, pooled):
            assert left.cycles == right.cycles
            assert left.summary() == right.summary()
            assert left.fu_state_breakdown() == right.fu_state_breakdown()
            assert left.counters() == right.counters()
            assert left.job_table() == right.job_table()

    def test_frame_path_matches_serial(self, pool):
        requests = _requests()
        self._assert_equivalent(self._serial(requests), run_batch(requests, pool=pool))

    def test_shared_memory_path_matches_serial(self, pool, monkeypatch):
        # force even tiny frames through a shared-memory block
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1")
        requests = _requests()
        self._assert_equivalent(self._serial(requests), run_batch(requests, pool=pool))

    def test_pickle_path_matches_serial(self, pool, monkeypatch):
        monkeypatch.setenv("REPRO_PICKLE_RESULTS", "1")
        requests = _requests()
        self._assert_equivalent(self._serial(requests), run_batch(requests, pool=pool))

    def test_byte_store_payloads_identical_local_vs_pooled(self, pool):
        requests = _requests(latencies=(1, 50))
        local_cache, pooled_cache = _BytesCache(), _BytesCache()
        run_batch(requests, jobs=1, cache=local_cache)
        run_batch(requests, pool=pool, cache=pooled_cache)
        assert set(local_cache.blobs) == set(pooled_cache.blobs)
        for key, blob in local_cache.blobs.items():
            assert pooled_cache.blobs[key] == blob

    def test_unknown_encoding_tag_rejected(self):
        with pytest.raises(SimulationError, match="encoding tag"):
            _decode_result(("X", b""))

    def test_shm_threshold_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
        assert _shm_min_bytes() == DEFAULT_SHM_MIN_BYTES
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "123")
        assert _shm_min_bytes() == 123
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "not-a-number")
        assert _shm_min_bytes() == DEFAULT_SHM_MIN_BYTES

    def test_run_cache_hits_after_pooled_batch(self, pool):
        cache = RunCache()
        requests = _requests(latencies=(1,))
        run_batch(requests, pool=pool, cache=cache)
        assert cache.misses == len(requests)
        run_batch(requests, pool=pool, cache=cache)
        assert cache.hits == len(requests)


class TestCrashRecovery:
    def test_single_crash_is_retried_on_a_respawned_pool(self, pool, tmp_path):
        # a shared state_dir caps the budget at ONE crash service-wide: the
        # retry after the respawn must succeed
        set_fault_plan(
            FaultPlan([FaultSpec("worker_crash", count=1)], state_dir=tmp_path)
        )
        requests = _requests(latencies=(1,))
        serial = run_batch(requests, jobs=1)
        pooled = run_batch(requests, pool=pool)
        assert [r.cycles for r in pooled] == [r.cycles for r in serial]
        assert pool.spawned >= 2  # the crash cost one executor

    def test_crash_looping_plan_falls_back_in_process(self, pool):
        # without a state_dir every fresh worker crashes its first chunk:
        # both pool attempts fail and the batch must complete locally
        set_fault_plan(FaultPlan([FaultSpec("worker_crash", count=1_000_000)]))
        requests = _requests(latencies=(1,))
        serial_cycles = [r.cycles for r in run_batch(requests, jobs=1)]
        pooled = run_batch(requests, pool=pool)
        assert [r.cycles for r in pooled] == serial_cycles


class TestChunkPlanning:
    def test_single_index_single_chunk(self):
        requests = _requests(latencies=(1,))
        assert _plan_chunks([2], requests, workers=4) == [[2]]

    def test_partition_covers_every_index_once(self):
        requests = _requests()
        indexes = list(range(len(requests)))
        chunks = _plan_chunks(indexes, requests, workers=2)
        assert sorted(index for chunk in chunks for index in chunk) == indexes
        assert len(chunks) <= 2 * CHUNKS_PER_WORKER

    def test_large_request_gets_its_own_chunk(self):
        big = make_vector_loop_program("big", kernel="triad", vl=64, iterations=200)
        small = make_scalar_loop_program("small", iterations=2)
        requests = [SimulationRequest.single("reference", big)] + [
            SimulationRequest.single("reference", small, memory_latency=latency)
            for latency in (1, 2, 3, 4, 5)
        ]
        chunks = _plan_chunks(list(range(len(requests))), requests, workers=2)
        [big_chunk] = [chunk for chunk in chunks if 0 in chunk]
        assert big_chunk == [0]

    def test_estimates(self):
        program = WORKLOADS["triad"]
        single = SimulationRequest.single("reference", program)
        assert _estimate_instructions(single) == program.dynamic_instruction_count
        frozen = Job.from_instructions("frozen", program.expanded())
        opaque = SimulationRequest.single("reference", frozen)
        assert _estimate_instructions(opaque) == DEFAULT_INSTRUCTION_ESTIMATE
        limited = SimulationRequest.single("reference", program, instruction_limit=3)
        assert _estimate_instructions(limited) == 3
