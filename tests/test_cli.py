"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.figures import ALL_EXPERIMENTS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.preset == "default"
        assert args.scale is None
        assert args.jobs == 1
        assert args.list_experiments is False

    def test_jobs_and_list_flags(self):
        args = build_parser().parse_args(["all", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["--list"])
        assert args.list_experiments is True
        assert args.experiments == []

    def test_multiple_experiments_and_options(self):
        args = build_parser().parse_args(
            ["table3", "figure5", "--preset", "quick", "--scale", "0.1", "--max-rows", "5"]
        )
        assert args.experiments == ["table3", "figure5"]
        assert args.preset == "quick"
        assert args.scale == 0.1
        assert args.max_rows == 5


class TestMain:
    def test_unknown_experiment_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_table_experiments_run_quickly(self, capsys):
        exit_code = main(["table1", "table2", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 1" in captured.out
        assert "Table 2" in captured.out
        assert "regenerated in" in captured.out

    def test_table3_with_tiny_scale(self, capsys):
        exit_code = main(["table3", "--scale", "0.05", "--max-rows", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "swm256" in captured.out
        assert "more rows" in captured.out

    def test_figure5_quick_preset(self, capsys):
        exit_code = main(["figure5", "--preset", "quick", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "memory port" in captured.out.lower()

    def test_repeated_experiment_ids_run_once(self, capsys):
        exit_code = main(["table1", "table1", "table2", "table1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count("regenerated in") == 2
        assert captured.out.count("[table1 regenerated") == 1

    def test_all_plus_explicit_id_not_run_twice(self, capsys):
        exit_code = main(["table1", "all", "table2", "--scale", "0.05", "--preset", "quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        # 'all' expands to the full experiment list; explicit duplicates collapse
        assert captured.out.count("regenerated in") == len(ALL_EXPERIMENTS)

    def test_list_flag_prints_all_experiments(self, capsys):
        exit_code = main(["--list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ALL_EXPERIMENTS:
            assert name in captured.out
        assert "Figure 10" in captured.out

    def test_no_experiments_and_no_list_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])

    def test_jobs_flag_produces_identical_report(self, capsys):
        exit_code = main(["figure5", "--preset", "quick", "--scale", "0.05"])
        serial = capsys.readouterr().out
        assert exit_code == 0
        exit_code = main(["figure5", "--preset", "quick", "--scale", "0.05", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert exit_code == 0

        def rows(text: str) -> list[str]:
            return [line for line in text.splitlines() if "regenerated in" not in line]

        assert rows(serial) == rows(parallel)


class TestServiceCommands:
    def test_serve_and_submit_round_trip(self, tmp_path, capsys):
        import re
        import threading

        from repro.cli import serve_main, submit_main

        store_dir = tmp_path / "store"
        output = {}

        def run_server() -> None:
            output["code"] = serve_main(
                ["--port", "0", "--store-dir", str(store_dir),
                 "--workers", "1", "--duration", "12", "--max-store-mb", "16"]
            )

        server_thread = threading.Thread(target=run_server, daemon=True)
        server_thread.start()
        url = None
        for _ in range(100):
            captured = capsys.readouterr().out
            match = re.search(r"serving on (http://\S+)", captured)
            if match:
                url = match.group(1)
                break
            import time

            time.sleep(0.05)
        assert url is not None, "serve never printed its URL"

        code = submit_main(
            ["--url", url, "--machine", "reference",
             "--benchmark", "tomcatv", "--scale", "0.05"]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "served_from: executed" in first
        assert re.search(r"\d+ instructions in \d+ cycles", first)

        # the second submission must be answered from the durable store
        code = submit_main(
            ["--url", url, "--machine", "reference",
             "--benchmark", "tomcatv", "--scale", "0.05", "--no-wait"]
        )
        assert code == 0
        assert "served_from: store" in capsys.readouterr().out
        server_thread.join(timeout=30.0)
        assert output["code"] == 0
        assert "service stopped" in capsys.readouterr().out

    def test_submit_against_dead_server_exits_nonzero(self, capsys):
        from repro.cli import submit_main

        code = submit_main(
            ["--url", "http://127.0.0.1:9", "--machine", "reference",
             "--benchmark", "tomcatv", "--no-wait"]
        )
        assert code == 2
        assert "service error:" in capsys.readouterr().err

    def test_main_routes_service_subcommands(self, monkeypatch):
        import repro.cli as cli

        seen = {}
        monkeypatch.setattr(cli, "serve_main", lambda argv: seen.setdefault("serve", argv) and 0)
        monkeypatch.setattr(cli, "submit_main", lambda argv: seen.setdefault("submit", argv) and 0)
        monkeypatch.setattr(cli, "sweep_main", lambda argv: seen.setdefault("sweep", argv) and 0)
        assert cli.main(["serve", "--port", "0"]) == 0
        assert cli.main(["submit", "--no-wait"]) == 0
        assert cli.main(["sweep", "spec.toml", "--quiet"]) == 0
        assert seen == {
            "serve": ["--port", "0"],
            "submit": ["--no-wait"],
            "sweep": ["spec.toml", "--quiet"],
        }


class TestSweepCommand:
    SPEC = """\
[sweep]
name = "cli-mini"

[request]
machine = "reference"
mode = "single"
scale = 0.05

[axes]
workload = ["tomcatv"]
memory_latency = [1, 50]

[metrics]
select = ["cycles"]
"""

    def test_sweep_runs_spec_and_writes_manifest(self, tmp_path, capsys):
        from repro.cli import sweep_main

        spec_path = tmp_path / "mini.toml"
        spec_path.write_text(self.SPEC)
        out_dir = tmp_path / "out"
        code = sweep_main([str(spec_path), "--out", str(out_dir)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "[1/2]" in captured and "[2/2]" in captured
        assert "2 points" in captured
        assert (out_dir / "sweep.json").exists()
        assert (out_dir / "ledger.sha256").exists()
        assert (out_dir / "SUMMARY.md").exists()

    def test_sweep_quiet_suppresses_progress(self, tmp_path, capsys):
        from repro.cli import sweep_main

        spec_path = tmp_path / "mini.toml"
        spec_path.write_text(self.SPEC)
        assert sweep_main([str(spec_path), "--quiet"]) == 0
        assert "[1/2]" not in capsys.readouterr().out

    def test_sweep_missing_spec_is_an_error(self, tmp_path, capsys):
        from repro.cli import sweep_main

        assert sweep_main([str(tmp_path / "no-such-spec.toml")]) == 1
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_sweep_failed_points_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import sweep_main

        spec_path = tmp_path / "broken.toml"
        spec_path.write_text(
            self.SPEC.replace('machine = "reference"', 'machine = "no-such-machine"')
        )
        code = sweep_main([str(spec_path), "--quiet"])
        assert code == 1
        assert "no-such-machine" in capsys.readouterr().err
