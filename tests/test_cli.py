"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.preset == "default"
        assert args.scale is None

    def test_multiple_experiments_and_options(self):
        args = build_parser().parse_args(
            ["table3", "figure5", "--preset", "quick", "--scale", "0.1", "--max-rows", "5"]
        )
        assert args.experiments == ["table3", "figure5"]
        assert args.preset == "quick"
        assert args.scale == 0.1
        assert args.max_rows == 5


class TestMain:
    def test_unknown_experiment_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_table_experiments_run_quickly(self, capsys):
        exit_code = main(["table1", "table2", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 1" in captured.out
        assert "Table 2" in captured.out
        assert "regenerated in" in captured.out

    def test_table3_with_tiny_scale(self, capsys):
        exit_code = main(["table3", "--scale", "0.05", "--max-rows", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "swm256" in captured.out
        assert "more rows" in captured.out

    def test_figure5_quick_preset(self, capsys):
        exit_code = main(["figure5", "--preset", "quick", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "memory port" in captured.out.lower()
