"""Unit tests for machine configuration (Table 1 parameters)."""

from __future__ import annotations

import pytest

from repro.core.config import LatencyTable, MachineConfig
from repro.errors import ConfigurationError


class TestLatencyTable:
    def test_defaults_cover_all_classes(self):
        table = LatencyTable()
        for op_class in ("alu", "logic", "mul", "div", "sqrt", "move", "memory"):
            assert table.scalar_latency(op_class) >= 0
            assert table.vector_latency(op_class) >= 0

    def test_vector_latencies_larger_except_div_sqrt(self):
        """Table 1: vector latencies exceed scalar ones except for div and sqrt."""
        table = LatencyTable()
        for op_class in ("alu", "logic", "mul"):
            assert table.vector_latency(op_class) >= table.scalar_latency(op_class)
        for op_class in ("div", "sqrt"):
            assert table.vector_latency(op_class) <= table.scalar_latency(op_class)

    def test_unknown_class_raises(self):
        table = LatencyTable()
        with pytest.raises(ConfigurationError):
            table.scalar_latency("teleport")
        with pytest.raises(ConfigurationError):
            table.vector_latency("teleport")

    def test_negative_latency_rejected(self):
        table = LatencyTable(scalar={"alu": -1}, vector={})
        with pytest.raises(ConfigurationError):
            table.validate()


class TestMachineConfig:
    def test_reference_defaults(self):
        config = MachineConfig.reference()
        assert config.num_contexts == 1
        assert config.memory_latency == 50
        assert config.read_crossbar_latency == 2
        assert not config.is_multithreaded
        assert not config.dual_scalar

    def test_multithreaded_constructor(self):
        config = MachineConfig.multithreaded(3, memory_latency=70)
        assert config.num_contexts == 3
        assert config.memory_latency == 70
        assert config.is_multithreaded
        assert config.name == "multithreaded-3"

    def test_dual_scalar_constructor(self):
        config = MachineConfig.dual_scalar_fujitsu()
        assert config.dual_scalar
        assert config.num_contexts == 2

    def test_context_count_bounds(self):
        """The proposed architecture supports up to 4 hardware contexts (section 3)."""
        with pytest.raises(ConfigurationError):
            MachineConfig(num_contexts=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(num_contexts=5)
        MachineConfig(num_contexts=4)  # must not raise

    def test_dual_scalar_requires_two_contexts(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_contexts=3, dual_scalar=True)

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(memory_latency=-1)
        with pytest.raises(ConfigurationError):
            MachineConfig(read_crossbar_latency=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(vector_startup=-1)

    def test_with_memory_latency(self):
        config = MachineConfig.reference().with_memory_latency(100)
        assert config.memory_latency == 100
        assert config.num_contexts == 1

    def test_with_crossbar_latency(self):
        config = MachineConfig.multithreaded(2).with_crossbar_latency(3)
        assert config.read_crossbar_latency == 3
        assert config.write_crossbar_latency == 3

    def test_with_scheduler(self):
        config = MachineConfig.multithreaded(2).with_scheduler("round_robin")
        assert config.scheduler == "round_robin"

    def test_register_file_size_grows_with_contexts(self):
        """4 contexts imply 4096 64-bit registers = 32 KB of vector state (section 3)."""
        four = MachineConfig.multithreaded(4)
        assert four.total_vector_register_bits == 4 * 8 * 128 * 64
        assert four.total_vector_register_bits // 8 == 32 * 1024
        one = MachineConfig.reference()
        assert four.total_vector_register_bits == 4 * one.total_vector_register_bits

    def test_configs_are_immutable(self):
        config = MachineConfig.reference()
        with pytest.raises(AttributeError):
            config.memory_latency = 10  # type: ignore[misc]
