"""Unit tests for the dispatch/execution timing model (the heart of the simulator)."""

from __future__ import annotations

import pytest

from repro.core.config import LatencyTable, MachineConfig
from repro.core.context import HardwareContext
from repro.core.dispatch import DispatchModel
from repro.core.functional_units import VectorUnitPool
from repro.core.suppliers import Job, SingleJobSupplier
from repro.isa.builder import (
    branch,
    nop,
    scalar_load,
    scalar_op,
    scalar_store,
    vadd,
    vgather,
    vload,
    vmul,
    vreduce,
    vstore,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V
from repro.memory.system import MemorySystem


def make_model(latency=50, **config_overrides):
    config = MachineConfig.reference(latency)
    if config_overrides:
        from dataclasses import replace

        config = replace(config, **config_overrides)
    memory = MemorySystem(latency=config.memory_latency)
    pool = VectorUnitPool()
    model = DispatchModel(config, memory, pool)
    context = HardwareContext(0, SingleJobSupplier(Job.from_instructions("t", [nop()])))
    return model, context, pool, memory, config


class TestScalarTiming:
    def test_scalar_alu_latency(self):
        model, context, _, _, config = make_model()
        outcome = model.dispatch(context, scalar_op(Opcode.ADD_S, S(0), S(1), S(2)), now=10)
        expected = 10 + config.latencies.scalar_latency("alu")
        assert outcome.completion == expected
        assert context.scoreboard.state(S(0)).ready_at == expected

    def test_scalar_div_is_slow(self):
        model, context, _, _, config = make_model()
        outcome = model.dispatch(context, scalar_op(Opcode.DIV_S, S(0), S(1), S(2)), now=0)
        assert outcome.completion == config.latencies.scalar_latency("div")

    def test_scalar_load_pays_memory_latency(self):
        model, context, _, memory, _ = make_model(latency=40)
        outcome = model.dispatch(context, scalar_load(S(0), address=0x10), now=5)
        assert outcome.memory_transactions == 1
        assert context.scoreboard.state(S(0)).ready_at >= 5 + 40
        assert memory.address_port_busy_cycles == 1

    def test_scalar_store_does_not_wait(self):
        model, context, _, memory, _ = make_model(latency=40)
        outcome = model.dispatch(context, scalar_store(S(0), A(1), address=0x10), now=5)
        assert outcome.completion <= 5 + 2
        assert memory.stats.scalar_stores == 1

    def test_branch_has_no_memory_side_effects(self):
        model, context, _, memory, _ = make_model()
        outcome = model.dispatch(context, branch(S(1)), now=0)
        assert outcome.memory_transactions == 0
        assert memory.stats.total_transactions == 0


class TestVectorArithmeticTiming:
    def test_result_timing_includes_crossbars_and_latency(self):
        model, context, pool, _, config = make_model()
        instruction = vadd(V(2), V(0), V(1), vl=64)
        outcome = model.dispatch(context, instruction, now=0)
        expected_first = (
            config.vector_startup
            + config.read_crossbar_latency
            + config.latencies.vector_latency("alu")
            + config.write_crossbar_latency
        )
        state = context.scoreboard.state(V(2))
        assert state.first_element_at == expected_first
        assert state.ready_at == expected_first + 64
        assert state.chainable is True
        assert outcome.vector_arithmetic_operations == 64

    def test_unit_occupied_for_vl_cycles(self):
        model, context, pool, _, config = make_model()
        model.dispatch(context, vadd(V(2), V(0), V(1), vl=100), now=0)
        assert pool.fu1.free_at == config.vector_startup + 100

    def test_mul_goes_to_fu2(self):
        model, context, pool, _, _ = make_model()
        outcome = model.dispatch(context, vmul(V(2), V(0), V(1), vl=32), now=0)
        assert outcome.used_vector_unit == "FU2"
        assert pool.fu2.free_at > 0
        assert pool.fu1.free_at == 0

    def test_chaining_from_in_flight_producer(self):
        """FU->FU chaining: the dependent starts at the producer's element rate."""
        model, context, _, _, _ = make_model()
        model.dispatch(context, vadd(V(2), V(0), V(1), vl=64), now=0)
        producer_first = context.scoreboard.state(V(2)).first_element_at
        model.dispatch(context, vmul(V(3), V(2), V(1), vl=64), now=1)
        consumer_first = context.scoreboard.state(V(3)).first_element_at
        # the consumer's first result appears one pipeline depth after the
        # producer's first element, not after the producer's completion
        assert consumer_first < context.scoreboard.state(V(2)).ready_at
        assert consumer_first >= producer_first

    def test_earliest_issue_blocks_on_busy_unit(self):
        model, context, pool, _, _ = make_model()
        pool.fu1.reserve(0, 200)
        pool.fu2.reserve(0, 300)
        assert model.earliest_issue(context, vadd(V(2), V(0), V(1), vl=8), now=0) == 200
        assert model.earliest_issue(context, vmul(V(2), V(0), V(1), vl=8), now=0) == 300

    def test_reduction_result_not_available_until_completion(self):
        model, context, _, _, _ = make_model()
        model.dispatch(context, vreduce(S(1), V(0), vl=64), now=0)
        state = context.scoreboard.state(S(1))
        assert state.ready_at == state.first_element_at
        assert state.ready_at > 64


class TestVectorMemoryTiming:
    def test_load_not_chainable(self):
        """No load->FU chaining on the modeled machine (section 3)."""
        model, context, _, _, _ = make_model()
        model.dispatch(context, vload(V(0), vl=64, address=0x100), now=0)
        state = context.scoreboard.state(V(0))
        assert state.chainable is False
        assert state.ready_at > 50 + 64

    def test_load_occupies_port_for_vl_cycles(self):
        model, context, pool, memory, _ = make_model()
        outcome = model.dispatch(context, vload(V(0), vl=77, address=0x100), now=0)
        assert outcome.memory_transactions == 77
        assert memory.address_port_busy_cycles == 77
        # the LD unit is free again once the addresses have been streamed
        assert pool.load_store.free_at < outcome.completion

    def test_store_chains_from_functional_unit(self):
        model, context, _, memory, _ = make_model()
        model.dispatch(context, vadd(V(2), V(0), V(1), vl=64), now=0)
        producer_first = context.scoreboard.state(V(2)).first_element_at
        outcome = model.dispatch(context, vstore(V(2), A(0), vl=64, address=0x200), now=1)
        # the store's addresses cannot be driven before the producer's elements exist
        assert outcome.completion >= producer_first + 64 - 1
        assert memory.stats.vector_stores == 1

    def test_store_after_load_waits_for_the_full_load(self):
        model, context, _, _, _ = make_model(latency=30)
        model.dispatch(context, vload(V(0), vl=32, address=0x100), now=0)
        load_ready = context.scoreboard.state(V(0)).ready_at
        assert model.earliest_issue(context, vstore(V(0), A(0), vl=32, address=0x200), now=1) >= load_ready

    def test_gather_pays_latency_like_a_load(self):
        model, context, _, _, _ = make_model(latency=60)
        model.dispatch(context, vgather(V(2), V(0), vl=16, address=0x100), now=0)
        state = context.scoreboard.state(V(2))
        assert state.chainable is False
        assert state.ready_at > 60 + 16

    def test_back_to_back_loads_keep_port_busy(self):
        """A second independent load starts streaming right after the first."""
        model, context, _, memory, _ = make_model()
        model.dispatch(context, vload(V(0), vl=64, address=0x100), now=0)
        free_after_first = model.vector_units.load_store.free_at
        assert model.earliest_issue(context, vload(V(2), vl=64, address=0x900), now=0) == free_after_first

    def test_memory_latency_zero_still_works(self):
        model, context, _, _, _ = make_model(latency=0)
        model.dispatch(context, vload(V(0), vl=8, address=0), now=0)
        assert context.scoreboard.state(V(0)).ready_at > 8


class TestCrossbarLatencyEffect:
    def test_slower_crossbar_delays_results(self):
        fast_model, fast_context, _, _, _ = make_model()
        slow_model, slow_context, _, _, _ = make_model(
            read_crossbar_latency=3, write_crossbar_latency=3
        )
        fast_model.dispatch(fast_context, vadd(V(2), V(0), V(1), vl=64), now=0)
        slow_model.dispatch(slow_context, vadd(V(2), V(0), V(1), vl=64), now=0)
        fast_ready = fast_context.scoreboard.state(V(2)).ready_at
        slow_ready = slow_context.scoreboard.state(V(2)).ready_at
        assert slow_ready == fast_ready + 2  # one extra cycle per crossbar


class TestDispatchErrors:
    def test_vector_memory_requires_free_unit(self):
        from repro.errors import SimulationError

        model, context, pool, _, _ = make_model()
        pool.load_store.reserve(0, 100)
        with pytest.raises(SimulationError):
            model.dispatch(context, vload(V(0), vl=8, address=0), now=0)

    def test_vector_arithmetic_requires_free_unit(self):
        from repro.errors import SimulationError

        model, context, pool, _, _ = make_model()
        pool.fu2.reserve(0, 100)
        with pytest.raises(SimulationError):
            model.dispatch(context, vmul(V(2), V(0), V(1), vl=8), now=0)
