"""Tests for the Fujitsu VP2000-style dual-scalar machine (section 9)."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.dual_scalar import DualScalarSimulator
from repro.core.multithreaded import MultithreadedSimulator
from repro.errors import SimulationError


class TestDualScalarSimulator:
    def test_requires_dual_scalar_config(self):
        with pytest.raises(SimulationError):
            DualScalarSimulator(MachineConfig.multithreaded(2))

    def test_group_requires_two_programs(self, triad_program):
        simulator = DualScalarSimulator()
        with pytest.raises(SimulationError):
            simulator.run_group([triad_program])

    def test_empty_job_queue_rejected(self):
        with pytest.raises(SimulationError):
            DualScalarSimulator().run_job_queue([])

    def test_group_run_completes_thread_zero(self, triad_program, scalar_program):
        result = DualScalarSimulator(MachineConfig.dual_scalar_fujitsu(50)).run_group(
            [triad_program, scalar_program]
        )
        assert result.stats.thread(0).completed_programs == 1

    def test_job_queue_completes_all_jobs(self, tiny_suite):
        programs = [tiny_suite[name] for name in ("flo52", "dyfesm", "swm256")]
        result = DualScalarSimulator(MachineConfig.dual_scalar_fujitsu(50)).run_job_queue(
            programs
        )
        assert len(result.completed_jobs()) == 3

    def test_dual_scalar_beats_multithreading_at_low_latency(self, tiny_suite):
        """At low latency two scalar units give the Fujitsu machine a small edge (section 9)."""
        programs = [tiny_suite[name] for name in ("trfd", "dyfesm", "tomcatv", "nasa7")]
        fujitsu = DualScalarSimulator(MachineConfig.dual_scalar_fujitsu(1)).run_job_queue(
            programs
        )
        threaded = MultithreadedSimulator(MachineConfig.multithreaded(2, 1)).run_job_queue(
            programs
        )
        assert fujitsu.cycles <= threaded.cycles

    def test_advantage_shrinks_at_high_latency(self, tiny_suite):
        """At 100-cycle latency the two machines almost converge (section 9)."""
        programs = [tiny_suite[name] for name in ("trfd", "dyfesm", "tomcatv", "nasa7")]
        gaps = {}
        for latency in (1, 100):
            fujitsu = DualScalarSimulator(
                MachineConfig.dual_scalar_fujitsu(latency)
            ).run_job_queue(programs)
            threaded = MultithreadedSimulator(
                MachineConfig.multithreaded(2, latency)
            ).run_job_queue(programs)
            gaps[latency] = (threaded.cycles - fujitsu.cycles) / threaded.cycles
        assert gaps[100] <= gaps[1] + 0.01
