"""Tests for the cycle-level simulation engine (decode behaviour of section 3)."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.engine import SimulationEngine
from repro.core.suppliers import Job, JobQueueSupplier, SingleJobSupplier
from repro.errors import SimulationError
from repro.isa.builder import nop, scalar_op, vadd, vload, vstore
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V


def engine_for(instructions, config=None, name="prog"):
    config = config or MachineConfig.reference(50)
    job = Job.from_instructions(name, instructions)
    suppliers = [SingleJobSupplier(job)]
    for _ in range(config.num_contexts - 1):
        suppliers.append(JobQueueSupplier([]))
    return SimulationEngine(config, suppliers)


class TestSingleDecodeEngine:
    def test_independent_scalar_instructions_issue_one_per_cycle(self):
        instructions = [
            scalar_op(Opcode.ADD_S, S(i % 4), S((i + 1) % 4 + 4)) for i in range(10)
        ]
        # make them independent: each writes a different register read from the
        # second half of the register file, which nothing writes
        result = engine_for(instructions).run()
        assert result.instructions == 10
        # one instruction per cycle plus the trailing completion cycle(s)
        assert result.cycles <= 12

    def test_dependent_scalar_chain_stalls(self):
        instructions = [
            scalar_op(Opcode.MUL_S, S(1), S(0), S(0)),
            scalar_op(Opcode.MUL_S, S(2), S(1), S(1)),
            scalar_op(Opcode.MUL_S, S(3), S(2), S(2)),
        ]
        result = engine_for(instructions).run()
        # the second and third multiplies wait for the previous result's
        # 5-cycle latency, so the run takes clearly longer than 3 cycles
        assert result.cycles >= 10
        assert result.stats.decode_lost_cycles + result.stats.decode_idle_cycles > 0

    def test_vector_program_counts(self):
        instructions = [
            vload(V(0), vl=32, address=0x100),
            vload(V(2), vl=32, address=0x200),
            vmul_like := vadd(V(1), V(0), V(2), vl=32),
            vstore(V(1), A(0), vl=32, address=0x300),
        ]
        result = engine_for(instructions).run()
        assert result.stats.vector_instructions == 4
        assert result.stats.memory_transactions == 3 * 32
        assert result.stats.vector_arithmetic_operations == 32
        assert result.memory_port_occupancy > 0

    def test_empty_workload(self):
        result = engine_for([]).run()
        assert result.cycles == 0
        assert result.instructions == 0
        assert result.stop_reason == "completed"

    def test_max_cycles_guard(self):
        instructions = [scalar_op(Opcode.DIV_S, S(1), S(1), S(2)) for _ in range(50)]
        result = engine_for(instructions).run(max_cycles=20)
        assert result.stop_reason == "max-cycles"
        assert result.cycles <= 20

    def test_stop_condition(self):
        instructions = [nop() for _ in range(20)]
        engine = engine_for(instructions)
        result = engine.run(stop_when=lambda e: e.stats.instructions >= 5)
        assert result.stop_reason == "stop-condition"
        assert result.instructions >= 5
        assert result.instructions < 20

    def test_supplier_count_must_match_contexts(self):
        config = MachineConfig.multithreaded(2)
        with pytest.raises(SimulationError):
            SimulationEngine(config, [SingleJobSupplier(Job.from_instructions("x", [nop()]))])

    def test_instruction_limits_validated(self):
        config = MachineConfig.reference()
        with pytest.raises(SimulationError):
            SimulationEngine(
                config,
                [SingleJobSupplier(Job.from_instructions("x", [nop()]))],
                instruction_limits=[1, 2],
            )

    def test_fu_state_breakdown_partitions_time(self, triad_program):
        from repro.core.suppliers import Job

        engine = SimulationEngine(
            MachineConfig.reference(50), [SingleJobSupplier(Job.from_program(triad_program))]
        )
        result = engine.run()
        breakdown = result.fu_state_breakdown()
        assert sum(breakdown.values()) == result.cycles
        assert breakdown["( , , )"] > 0  # some truly idle cycles exist

    def test_decode_accounting_sums_to_total(self, triad_program):
        engine = SimulationEngine(
            MachineConfig.reference(50), [SingleJobSupplier(Job.from_program(triad_program))]
        )
        result = engine.run()
        stats = result.stats
        accounted = (
            stats.decode_busy_cycles + stats.decode_lost_cycles + stats.decode_idle_cycles
        )
        assert accounted == pytest.approx(result.cycles, abs=2)


class TestMultithreadedEngine:
    def test_two_threads_share_the_functional_units(self, triad_program):
        config = MachineConfig.multithreaded(2, 50)
        job = Job.from_program(triad_program)
        engine = SimulationEngine(config, [SingleJobSupplier(job), SingleJobSupplier(job)])
        result = engine.run()
        single = SimulationEngine(
            MachineConfig.reference(50), [SingleJobSupplier(job)]
        ).run()
        # running two copies together is faster than twice the single time but
        # slower than a single run (resources are shared)
        assert single.cycles < result.cycles < 2 * single.cycles
        assert result.memory_port_occupancy > single.memory_port_occupancy

    def test_at_most_one_dispatch_per_cycle(self, triad_program):
        config = MachineConfig.multithreaded(2, 50)
        job = Job.from_program(triad_program)
        engine = SimulationEngine(config, [SingleJobSupplier(job), SingleJobSupplier(job)])
        result = engine.run()
        assert result.instructions <= result.cycles

    def test_unfair_scheduler_prioritizes_thread_zero(self, triad_program, scalar_program):
        config = MachineConfig.multithreaded(2, 50)
        engine = SimulationEngine(
            config,
            [
                SingleJobSupplier(Job.from_program(triad_program)),
                SingleJobSupplier(Job.from_program(scalar_program)),
            ],
        )
        result = engine.run()
        thread0 = result.stats.thread(0)
        # thread 0 must have completed its program
        assert thread0.completed_programs == 1

    def test_per_thread_stats_sum_to_global(self, triad_program, scalar_program):
        config = MachineConfig.multithreaded(2, 50)
        engine = SimulationEngine(
            config,
            [
                SingleJobSupplier(Job.from_program(triad_program)),
                SingleJobSupplier(Job.from_program(scalar_program)),
            ],
        )
        result = engine.run()
        assert sum(t.instructions for t in result.stats.threads) == result.instructions
        assert sum(t.vector_instructions for t in result.stats.threads) == (
            result.stats.vector_instructions
        )


class TestDualScalarEngine:
    def test_dual_scalar_can_exceed_one_instruction_per_cycle(self, scalar_program):
        config = MachineConfig.dual_scalar_fujitsu(1)
        job = Job.from_program(scalar_program)
        engine = SimulationEngine(config, [SingleJobSupplier(job), SingleJobSupplier(job)])
        result = engine.run()
        single = SimulationEngine(
            MachineConfig.reference(1), [SingleJobSupplier(job)]
        ).run()
        # two scalar units decode in parallel: two copies take barely longer
        # than one copy alone, i.e. clearly less than two sequential runs
        assert result.cycles < 1.7 * single.cycles

    def test_dual_scalar_still_shares_vector_unit(self, triad_program):
        config = MachineConfig.dual_scalar_fujitsu(50)
        job = Job.from_program(triad_program)
        engine = SimulationEngine(config, [SingleJobSupplier(job), SingleJobSupplier(job)])
        result = engine.run()
        single = SimulationEngine(
            MachineConfig.reference(50), [SingleJobSupplier(job)]
        ).run()
        assert result.cycles > single.cycles
