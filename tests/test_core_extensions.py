"""Tests for the future-work extensions (section 10): multi-port memory,
simultaneous multi-thread issue, and the chaining ablation switch."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import MachineConfig
from repro.core.functional_units import VectorUnitPool
from repro.core.multithreaded import MultithreadedSimulator
from repro.core.reference import ReferenceSimulator
from repro.errors import ConfigurationError, SimulationError
from repro.memory.request import AccessKind, MemoryRequest
from repro.memory.system import MemorySystem
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def suite():
    return build_suite(
        ["swm256", "hydro2d", "arc2d", "flo52", "tomcatv", "dyfesm"], scale=0.1
    )


class TestConfigurationExtensions:
    def test_cray_style_constructor(self):
        config = MachineConfig.cray_style(4, 50)
        assert config.num_memory_ports == 3
        assert config.issue_width == 2
        assert config.num_contexts == 4

    def test_port_and_width_bounds(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_memory_ports=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(num_memory_ports=5)
        with pytest.raises(ConfigurationError):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(num_contexts=2, dual_scalar=True, issue_width=2)

    def test_chaining_flag_default_on(self):
        assert MachineConfig.reference().allow_chaining


class TestMultiPortMemorySystem:
    def test_two_ports_serve_two_streams_concurrently(self):
        memory = MemorySystem(latency=10, num_ports=2)
        first = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=32), earliest=0)
        second = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=32), earliest=0)
        assert first.start == 0
        assert second.start == 0  # the second port takes the second stream
        assert memory.address_port_busy_cycles == 64

    def test_occupancy_normalized_by_port_count(self):
        memory = MemorySystem(latency=10, num_ports=2)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=50), earliest=0)
        assert memory.port_occupancy(100) == pytest.approx(0.25)

    def test_invalid_port_count(self):
        with pytest.raises(ConfigurationError):
            MemorySystem(num_ports=0)

    def test_pool_with_multiple_ld_units(self):
        pool = VectorUnitPool(num_load_store_units=3)
        assert len(pool.load_store_units) == 3
        pool.load_store_units[0].reserve(0, 100)
        choice = pool.memory_unit(now=0)
        assert choice.earliest == 0
        assert choice.unit is not pool.load_store_units[0]

    def test_pool_rejects_zero_units(self):
        with pytest.raises(SimulationError):
            VectorUnitPool(num_load_store_units=0)


class TestMultiPortMachine:
    def test_three_ports_speed_up_the_multiprogrammed_machine(self, suite):
        """A Cray-like 3-port memory system relieves the single-port bottleneck."""
        programs = [suite[name] for name in ("swm256", "hydro2d", "arc2d", "flo52")]
        one_port = MultithreadedSimulator(MachineConfig.multithreaded(4, 50)).run_job_queue(
            programs
        )
        three_ports = MultithreadedSimulator(
            replace(MachineConfig.multithreaded(4, 50), num_memory_ports=3)
        ).run_job_queue(programs)
        assert three_ports.cycles < one_port.cycles
        # with the port bottleneck gone, per-port occupancy drops well below 1
        assert three_ports.memory_port_occupancy < one_port.memory_port_occupancy

    def test_single_thread_gains_little_from_extra_ports(self, suite):
        """One in-order thread cannot exploit extra ports (that is the paper's point)."""
        program = suite["swm256"]
        one = ReferenceSimulator(MachineConfig.reference(50)).run(program)
        three = ReferenceSimulator(
            replace(MachineConfig.reference(50), num_memory_ports=3)
        ).run(program)
        assert three.cycles <= one.cycles
        # the improvement is modest compared to the 3x raw bandwidth increase
        assert three.cycles > 0.6 * one.cycles


class TestMultiIssue:
    def test_wider_issue_helps_scalar_heavy_workloads(self, suite):
        """Simultaneous issue from several threads (future work, section 10).

        The gain is small — a few percent — because the decode unit is rarely
        the bottleneck of a vector machine, which is exactly the observation
        that makes the paper's single shared decode unit sufficient.
        """
        programs = [suite[name] for name in ("tomcatv", "dyfesm", "tomcatv", "dyfesm")]
        narrow = MultithreadedSimulator(MachineConfig.multithreaded(4, 50)).run_job_queue(
            programs
        )
        wide_config = replace(MachineConfig.multithreaded(4, 50), issue_width=2)
        wide = MultithreadedSimulator(wide_config).run_job_queue(programs)
        assert wide.instructions == narrow.instructions
        assert wide.cycles < narrow.cycles
        assert wide.cycles > 0.85 * narrow.cycles  # the improvement stays modest

    def test_cray_style_machine_beats_the_single_port_machine(self, suite):
        """Section 10: the 3-port, dual-issue extension outperforms the 1-port machine."""
        programs = [suite[name] for name in ("swm256", "hydro2d", "arc2d", "flo52")]
        one_port = MultithreadedSimulator(MachineConfig.multithreaded(4, 50)).run_job_queue(
            programs
        )
        cray = MultithreadedSimulator(
            MachineConfig.cray_style(4, 50, num_memory_ports=3, issue_width=2)
        ).run_job_queue(programs)
        assert cray.cycles < one_port.cycles
        assert cray.instructions == one_port.instructions

    def test_issue_width_cannot_exceed_dispatches_per_thread(self, suite):
        """Each thread still issues at most one instruction per cycle."""
        program = suite["swm256"]
        wide_config = replace(MachineConfig.multithreaded(2, 50), issue_width=2)
        result = MultithreadedSimulator(wide_config).run_single(program)
        assert result.stats.instructions_per_cycle <= 1.0 + 1e-9


class TestChainingAblation:
    def test_disabling_chaining_slows_the_machine(self, suite):
        """Chaining is one of the three effects the paper credits for vector efficiency."""
        program = suite["swm256"]
        chained = ReferenceSimulator(MachineConfig.reference(50)).run(program)
        unchained = ReferenceSimulator(
            replace(MachineConfig.reference(50), allow_chaining=False)
        ).run(program)
        assert unchained.cycles > chained.cycles

    def test_chaining_ablation_preserves_work(self, suite):
        program = suite["flo52"]
        chained = ReferenceSimulator(MachineConfig.reference(50)).run(program)
        unchained = ReferenceSimulator(
            replace(MachineConfig.reference(50), allow_chaining=False)
        ).run(program)
        assert chained.instructions == unchained.instructions
        assert chained.stats.memory_transactions == unchained.stats.memory_transactions
