"""Unit tests for the functional-unit pool (FU1, FU2, LD)."""

from __future__ import annotations

import pytest

from repro.core.functional_units import FunctionalUnit, VectorUnitPool
from repro.errors import SimulationError
from repro.isa.builder import vadd, vdiv, vmul, vsqrt, vload
from repro.isa.registers import V


class TestFunctionalUnit:
    def test_reservation_advances_free_time(self):
        unit = FunctionalUnit("FU1")
        unit.reserve(0, 130, elements=128)
        assert unit.free_at == 130
        assert unit.instructions_executed == 1
        assert unit.element_operations == 128

    def test_record_until_extends_stats_window_only(self):
        unit = FunctionalUnit("FU1")
        unit.reserve(0, 130, elements=128, record_until=260)
        assert unit.free_at == 130
        assert unit.intervals.busy_cycles() == 260

    def test_invalid_reservation(self):
        unit = FunctionalUnit("FU1")
        with pytest.raises(SimulationError):
            unit.reserve(10, 5)

    def test_reset(self):
        unit = FunctionalUnit("FU1")
        unit.reserve(0, 10)
        unit.reset()
        assert unit.free_at == 0
        assert unit.instructions_executed == 0


class TestVectorUnitPool:
    def test_mul_div_sqrt_route_to_fu2_only(self):
        """FU1 executes everything except multiplication, division and sqrt (section 3)."""
        pool = VectorUnitPool()
        for instruction in (
            vmul(V(2), V(0), V(1), vl=8),
            vdiv(V(2), V(0), V(1), vl=8),
            vsqrt(V(2), V(0), vl=8),
        ):
            choice = pool.arithmetic_unit_for(instruction, now=0)
            assert choice.unit is pool.fu2

    def test_general_ops_prefer_free_unit(self):
        pool = VectorUnitPool()
        add = vadd(V(2), V(0), V(1), vl=8)
        first = pool.arithmetic_unit_for(add, now=0)
        assert first.unit is pool.fu1  # tie broken towards FU1
        pool.fu1.reserve(0, 100)
        second = pool.arithmetic_unit_for(add, now=0)
        assert second.unit is pool.fu2
        pool.fu2.reserve(0, 200)
        third = pool.arithmetic_unit_for(add, now=0)
        assert third.unit is pool.fu1
        assert third.earliest == 100

    def test_fu2_only_waits_even_if_fu1_free(self):
        pool = VectorUnitPool()
        pool.fu2.reserve(0, 150)
        mul = vmul(V(2), V(0), V(1), vl=8)
        choice = pool.arithmetic_unit_for(mul, now=0)
        assert choice.unit is pool.fu2
        assert choice.earliest == 150

    def test_memory_unit(self):
        pool = VectorUnitPool()
        pool.load_store.reserve(0, 64)
        choice = pool.memory_unit(now=10)
        assert choice.unit is pool.load_store
        assert choice.earliest == 64

    def test_non_arithmetic_rejected(self):
        pool = VectorUnitPool()
        with pytest.raises(SimulationError):
            pool.arithmetic_unit_for(vload(V(0), vl=8, address=0), now=0)

    def test_reset(self):
        pool = VectorUnitPool()
        pool.fu1.reserve(0, 10)
        pool.load_store.reserve(0, 10)
        pool.reset()
        assert pool.fu1.free_at == 0
        assert pool.load_store.free_at == 0
