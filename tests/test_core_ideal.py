"""Tests for the IDEAL dependence-free lower bound (figure 10)."""

from __future__ import annotations

import math

import pytest

from repro.core.config import MachineConfig
from repro.core.ideal import IdealMachineModel, ideal_execution_time
from repro.core.reference import ReferenceSimulator
from repro.workloads.stats import ProgramStats, measure_program


class TestIdealMachineModel:
    def test_memory_bound_workload(self):
        stats = ProgramStats(
            scalar_instructions=10,
            vector_instructions=20,
            vector_memory_transactions=1000,
            vector_memory_instructions=10,
            vector_arithmetic_operations=500,
        )
        model = IdealMachineModel()
        assert model.bound_for_stats([stats]) == 1000
        assert model.bottleneck([stats]) == "memory-port"

    def test_arithmetic_bound_workload(self):
        stats = ProgramStats(
            scalar_instructions=0,
            vector_instructions=10,
            vector_arithmetic_operations=4000,
            vector_memory_transactions=100,
        )
        model = IdealMachineModel(num_arithmetic_units=2)
        assert model.bound_for_stats([stats]) == 2000
        assert model.bottleneck([stats]) == "vector-arithmetic-units"

    def test_decode_bound_workload(self):
        stats = ProgramStats(scalar_instructions=5000, vector_instructions=10)
        model = IdealMachineModel()
        assert model.bound_for_stats([stats]) == 5010
        assert model.bottleneck([stats]) == "decode-unit"

    def test_decode_width_halves_decode_bound(self):
        stats = ProgramStats(scalar_instructions=5000)
        assert IdealMachineModel(decode_width=2).bound_for_stats([stats]) == 2500

    def test_bound_is_additive_over_programs(self, triad_program, scalar_program):
        model = IdealMachineModel()
        separate = model.bound_for_programs([triad_program]) + model.bound_for_programs(
            [scalar_program]
        )
        union = model.bound_for_programs([triad_program, scalar_program])
        assert union <= separate + 1
        assert union >= max(
            model.bound_for_programs([triad_program]),
            model.bound_for_programs([scalar_program]),
        )

    def test_ideal_is_a_true_lower_bound(self, small_swm256):
        """No simulated machine can beat the dependence-free bound."""
        bound = ideal_execution_time([small_swm256])
        for latency in (1, 50):
            result = ReferenceSimulator(MachineConfig.reference(latency)).run(small_swm256)
            assert result.cycles >= bound

    def test_ideal_helper_matches_model(self, triad_program):
        assert ideal_execution_time([triad_program]) == IdealMachineModel().bound_for_programs(
            [triad_program]
        )
