"""Tests for the multithreaded vector architecture simulator."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.multithreaded import MultithreadedSimulator
from repro.core.reference import ReferenceSimulator
from repro.errors import ConfigurationError, SimulationError


class TestRunGroup:
    def test_group_size_must_match_contexts(self, triad_program):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        with pytest.raises(SimulationError):
            simulator.run_group([triad_program])

    def test_conflicting_num_contexts_rejected(self):
        with pytest.raises(ConfigurationError):
            MultithreadedSimulator(MachineConfig.multithreaded(2), num_contexts=3)

    def test_thread0_runs_to_completion_exactly_once(self, triad_program, scalar_program):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        result = simulator.run_group([triad_program, scalar_program])
        thread0_jobs = result.stats.thread(0).jobs
        assert sum(1 for job in thread0_jobs if job.completed) == 1
        assert result.stop_reason == "stop-condition"

    def test_companions_are_restarted(self, small_swm256, triad_program):
        """Short companions restart until the program on context 0 completes (figure 3)."""
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        result = simulator.run_group([small_swm256, triad_program])
        companion_jobs = result.stats.thread(1).jobs
        assert len(companion_jobs) > 1
        assert sum(1 for job in companion_jobs if job.completed) >= 1

    def test_no_restart_option(self, small_swm256, triad_program):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        result = simulator.run_group(
            [small_swm256, triad_program], restart_companions=False
        )
        assert len(result.stats.thread(1).jobs) == 1

    def test_multithreading_raises_port_occupancy(self, small_swm256, small_tomcatv):
        """The headline claim: multithreading drives the single port towards saturation."""
        reference = ReferenceSimulator(MachineConfig.reference(50))
        baseline = reference.run(small_swm256)
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        threaded = simulator.run_group([small_swm256, small_tomcatv])
        assert threaded.memory_port_occupancy > baseline.memory_port_occupancy
        assert threaded.memory_port_occupancy > 0.6

    def test_more_contexts_do_not_hurt_throughput(self, tiny_suite):
        programs = [tiny_suite[name] for name in ("swm256", "tomcatv", "flo52", "dyfesm")]
        two = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_group(
            programs[:2]
        )
        four = MultithreadedSimulator(MachineConfig.multithreaded(4, 50)).run_group(programs)
        assert four.memory_port_occupancy >= two.memory_port_occupancy - 0.05

    def test_workload_description(self, triad_program, scalar_program):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        result = simulator.run_group([triad_program, scalar_program])
        assert triad_program.name in result.workload_description
        assert scalar_program.name in result.workload_description


class TestRunJobQueue:
    def test_all_jobs_complete_exactly_once(self, tiny_suite):
        programs = [tiny_suite[name] for name in ("flo52", "swm256", "dyfesm")]
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_job_queue(programs)
        completed = result.completed_jobs()
        assert sorted(job.program for job in completed) == sorted(p.name for p in programs)
        assert result.stop_reason == "completed"

    def test_empty_queue_rejected(self):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2))
        with pytest.raises(SimulationError):
            simulator.run_job_queue([])

    def test_fixed_work_faster_with_more_contexts(self, tiny_suite):
        programs = [tiny_suite[name] for name in ("flo52", "swm256", "tomcatv", "dyfesm")]
        two = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_job_queue(programs)
        three = MultithreadedSimulator(MachineConfig.multithreaded(3, 50)).run_job_queue(programs)
        assert three.cycles <= two.cycles

    def test_timeline_entries_are_consistent(self, tiny_suite):
        programs = [tiny_suite[name] for name in ("flo52", "swm256", "dyfesm")]
        result = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_job_queue(
            programs
        )
        for record in result.jobs():
            assert record.end_cycle is not None
            assert record.end_cycle >= record.start_cycle
            assert 0 <= record.thread_id < 2


class TestRunSingle:
    def test_single_program_on_multithreaded_machine(self, triad_program):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        threaded = simulator.run_single(triad_program)
        reference = ReferenceSimulator(MachineConfig.reference(50)).run(triad_program)
        # with identical crossbar latencies a single thread behaves like the
        # reference machine
        assert threaded.cycles == pytest.approx(reference.cycles, rel=0.02)

    def test_slower_crossbar_penalizes_single_thread(self, triad_program):
        fast = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_single(
            triad_program
        )
        slow = MultithreadedSimulator(
            MachineConfig.multithreaded(2, 50, crossbar_latency=3)
        ).run_single(triad_program)
        assert slow.cycles >= fast.cycles
