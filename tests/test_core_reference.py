"""Tests for the reference-architecture simulator facade."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.reference import ReferenceSimulator, as_job, simulate_program
from repro.core.suppliers import Job
from repro.errors import ConfigurationError
from repro.trace.dixie import trace_program
from repro.workloads.stats import measure_program


class TestAsJob:
    def test_accepts_program(self, triad_program):
        assert as_job(triad_program).name == triad_program.name

    def test_accepts_trace(self, triad_program):
        trace = trace_program(triad_program)
        assert as_job(trace).name == triad_program.name

    def test_accepts_job(self, triad_program):
        job = Job.from_program(triad_program)
        assert as_job(job) is job

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_job(42)


class TestReferenceSimulator:
    def test_rejects_multicontext_config(self):
        with pytest.raises(ConfigurationError):
            ReferenceSimulator(MachineConfig.multithreaded(2))

    def test_run_counts_every_instruction(self, triad_program, reference_simulator):
        result = reference_simulator.run(triad_program)
        assert result.instructions == triad_program.dynamic_instruction_count
        assert result.stop_reason == "completed"
        assert result.workload_description == triad_program.name

    def test_program_and_trace_give_identical_timing(self, triad_program, reference_simulator):
        """Simulating a program directly or through its Dixie trace is equivalent."""
        direct = reference_simulator.run(triad_program)
        traced = reference_simulator.run(trace_program(triad_program))
        assert traced.cycles == direct.cycles
        assert traced.stats.memory_port_busy_cycles == direct.stats.memory_port_busy_cycles

    def test_instruction_limit_partial_run(self, triad_program, reference_simulator):
        full = reference_simulator.run(triad_program)
        limit = triad_program.dynamic_instruction_count // 2
        partial = reference_simulator.run(triad_program, instruction_limit=limit)
        assert partial.instructions == limit
        assert partial.cycles < full.cycles

    def test_runs_are_reproducible(self, triad_program, reference_simulator):
        first = reference_simulator.run(triad_program)
        second = reference_simulator.run(triad_program)
        assert first.cycles == second.cycles

    def test_memory_transactions_match_workload(self, triad_program, reference_simulator):
        stats = measure_program(triad_program)
        result = reference_simulator.run(triad_program)
        assert result.stats.memory_transactions == stats.memory_transactions

    def test_run_sequence_and_sequential_cycles(self, triad_program, scalar_program):
        simulator = ReferenceSimulator()
        results = simulator.run_sequence([triad_program, scalar_program])
        assert len(results) == 2
        total = simulator.sequential_cycles([triad_program, scalar_program])
        assert total == results[0].cycles + results[1].cycles

    def test_latency_increases_execution_time(self, triad_program):
        fast = ReferenceSimulator(MachineConfig.reference(1)).run(triad_program)
        slow = ReferenceSimulator(MachineConfig.reference(100)).run(triad_program)
        assert slow.cycles > fast.cycles

    def test_simulate_program_helper(self, triad_program):
        result = simulate_program(triad_program)
        assert result.cycles > 0
        assert result.num_contexts == 1

    def test_summary_dictionary(self, triad_program, reference_simulator):
        summary = reference_simulator.run(triad_program).summary()
        assert summary["contexts"] == 1
        assert summary["memory_latency"] == 50
        assert summary["cycles"] > 0
