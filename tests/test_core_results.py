"""Tests for the SimulationResult container and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.core.config import MachineConfig
from repro.core.reference import ReferenceSimulator
from repro.core.results import SimulationResult
from repro.core.statistics import JobRecord, SimulationStats, ThreadStats


class TestSimulationResult:
    def make_result(self):
        stats = SimulationStats(
            cycles=1000,
            instructions=400,
            memory_port_busy_cycles=600,
            vector_arithmetic_operations=500,
            threads=[ThreadStats(thread_id=0), ThreadStats(thread_id=1)],
        )
        stats.threads[0].jobs.append(
            JobRecord(program="a", thread_id=0, start_cycle=0, end_cycle=500, completed=True)
        )
        stats.threads[1].jobs.append(
            JobRecord(program="b", thread_id=1, start_cycle=0, end_cycle=None, completed=False)
        )
        return SimulationResult(config=MachineConfig.multithreaded(2), stats=stats)

    def test_property_passthrough(self):
        result = self.make_result()
        assert result.cycles == 1000
        assert result.instructions == 400
        assert result.memory_port_occupancy == pytest.approx(0.6)
        assert result.memory_port_idle_fraction == pytest.approx(0.4)
        assert result.vopc == pytest.approx(0.5)
        assert result.num_contexts == 2

    def test_job_listing(self):
        result = self.make_result()
        assert len(result.jobs()) == 2
        assert [job.program for job in result.completed_jobs()] == ["a"]

    def test_summary_keys(self):
        summary = self.make_result().summary()
        for key in ("machine", "contexts", "memory_latency", "cycles", "stop_reason"):
            assert key in summary

    def test_real_run_summary(self, triad_program):
        result = ReferenceSimulator(MachineConfig.reference(10)).run(triad_program)
        summary = result.summary()
        assert summary["cycles"] == result.cycles
        assert summary["memory_port_occupancy"] == pytest.approx(
            result.memory_port_occupancy, abs=1e-4
        )


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_top_level_exports(self):
        for name in (
            "MachineConfig",
            "ReferenceSimulator",
            "MultithreadedSimulator",
            "DualScalarSimulator",
            "IdealMachineModel",
            "SimulationResult",
            "build_benchmark",
            "build_suite",
            "build_workload",
            "simulate_program",
            "SweepSpec",
            "load_sweep_spec",
            "run_sweep",
            "execute_sweep",
        ):
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_error_hierarchy(self):
        assert issubclass(repro.SweepError, repro.ReproError)
        assert issubclass(repro.IsaError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.WorkloadError, repro.ReproError)
        assert issubclass(repro.TraceError, repro.ReproError)
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.ExperimentError, repro.ReproError)
        assert issubclass(repro.AssemblyError, repro.IsaError)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name)
