"""Unit tests for the thread-scheduling policies."""

from __future__ import annotations

import pytest

from repro.core.context import HardwareContext
from repro.core.scheduler import (
    LeastServiceScheduler,
    RoundRobinScheduler,
    UnfairBlockingScheduler,
    create_scheduler,
    scheduler_names,
)
from repro.core.suppliers import Job, SingleJobSupplier
from repro.errors import ConfigurationError
from repro.isa.builder import nop


def make_contexts(count=4):
    return [
        HardwareContext(i, SingleJobSupplier(Job.from_instructions(f"p{i}", [nop()])))
        for i in range(count)
    ]


class TestSchedulerFactory:
    def test_known_names(self):
        assert set(scheduler_names()) == {"unfair", "round_robin", "least_service"}
        for name in scheduler_names():
            assert create_scheduler(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("lottery")


class TestUnfairScheduler:
    def test_always_picks_lowest_numbered(self):
        """The paper's baseline favours thread 0 so it never slows down badly."""
        contexts = make_contexts()
        scheduler = UnfairBlockingScheduler()
        assert scheduler.select(contexts, previous=contexts[3], cycle=0).thread_id == 0
        assert scheduler.select(contexts[2:], previous=contexts[0], cycle=5).thread_id == 2

    def test_single_candidate(self):
        contexts = make_contexts(1)
        scheduler = UnfairBlockingScheduler()
        assert scheduler.select(contexts, previous=None, cycle=0) is contexts[0]


class TestRoundRobinScheduler:
    def test_rotates_after_previous(self):
        contexts = make_contexts(3)
        scheduler = RoundRobinScheduler()
        assert scheduler.select(contexts, previous=contexts[0], cycle=0).thread_id == 1
        assert scheduler.select(contexts, previous=contexts[2], cycle=0).thread_id == 0

    def test_skips_missing_threads(self):
        contexts = make_contexts(4)
        ready = [contexts[0], contexts[2]]
        scheduler = RoundRobinScheduler()
        assert scheduler.select(ready, previous=contexts[0], cycle=0).thread_id == 2

    def test_without_previous_picks_lowest(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.select(make_contexts(3), previous=None, cycle=0).thread_id == 0


class TestLeastServiceScheduler:
    def test_prefers_least_served(self):
        contexts = make_contexts(2)
        contexts[0].stats.instructions = 100
        contexts[1].stats.instructions = 10
        scheduler = LeastServiceScheduler()
        assert scheduler.select(contexts, previous=None, cycle=0).thread_id == 1

    def test_breaks_ties_by_thread_id(self):
        contexts = make_contexts(3)
        scheduler = LeastServiceScheduler()
        assert scheduler.select(contexts, previous=None, cycle=0).thread_id == 0
