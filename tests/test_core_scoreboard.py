"""Unit tests for the register scoreboard: hazards, chaining, bank ports.

Every case runs against both interchangeable implementations — the columnar
hazard tables (default) and the object-graph fallback — through the
``scoreboard`` fixture, so a behavioural drift between the two backends fails
here before it reaches the equivalence or golden-trace suites.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.scoreboard import (
    ColumnarScoreboard,
    Scoreboard,
    columnar_scoreboard_enabled,
    create_scoreboard,
    scoreboard_backend_name,
    set_columnar_scoreboard_enabled,
)
from repro.isa.builder import vadd, vload, vstore
from repro.isa.opcodes import Opcode
from repro.isa.instruction import Instruction
from repro.isa.registers import A, S, V

BACKENDS = {"columnar": ColumnarScoreboard, "object": Scoreboard}


@pytest.fixture(params=sorted(BACKENDS))
def make_scoreboard(request):
    """Factory building a scoreboard of the parametrized backend."""
    cls = BACKENDS[request.param]

    def build(**kwargs):
        return cls(**kwargs)

    return build


class TestDataHazards:
    def test_fresh_registers_impose_no_constraints(self, make_scoreboard):
        scoreboard = make_scoreboard()
        instruction = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(instruction, now=5) == 5

    def test_non_chainable_source_blocks_dispatch(self, make_scoreboard):
        """Loads are not chainable: consumers wait for the full load (section 3)."""
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=False)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=10) == 150

    def test_chainable_source_does_not_block_dispatch(self, make_scoreboard):
        """FU-produced results allow fully flexible chaining (section 3)."""
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=10) == 10

    def test_scalar_source_always_waits_for_completion(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(S(1), first_element_at=40, ready_at=40, chainable=True)
        consumer = Instruction(Opcode.ADD_S, dest=S(2), srcs=(S(1),))
        assert scoreboard.earliest_dispatch(consumer, now=0) == 40

    def test_waw_hazard(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(2), first_element_at=30, ready_at=90, chainable=True)
        writer = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 90

    def test_war_hazard(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_read(V(2), now=0, read_end=75)
        writer = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 75

    def test_chain_start_uses_first_element_times(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(0), first_element_at=42, ready_at=170, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.chain_start(consumer, candidate_start=10) == 42
        assert scoreboard.chain_start(consumer, candidate_start=60) == 60

    def test_chain_start_ignores_completed_producers(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(0), first_element_at=5, ready_at=9, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.chain_start(consumer, candidate_start=20) == 20

    def test_reset_clears_state(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=False)
        scoreboard.reset()
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=0) == 0

    def test_chaining_can_be_disabled(self, make_scoreboard):
        scoreboard = make_scoreboard(allow_chaining=False)
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=10) == 150

    def test_state_view_tracks_mutations(self, make_scoreboard):
        scoreboard = make_scoreboard()
        scoreboard.record_write(V(3), first_element_at=12, ready_at=80, chainable=True)
        scoreboard.record_read(A(1), now=0, read_end=7)
        vector_state = scoreboard.state(V(3))
        assert vector_state.ready_at == 80
        assert vector_state.first_element_at == 12
        assert vector_state.chainable is True
        assert vector_state.write_busy_until == 80
        assert scoreboard.state(A(1)).read_busy_until == 7

    def test_version_counts_every_mutation(self, make_scoreboard):
        scoreboard = make_scoreboard()
        before = scoreboard.version
        scoreboard.record_read(S(0), now=0, read_end=1)
        scoreboard.record_write(S(0), first_element_at=4, ready_at=4, chainable=True)
        scoreboard.reset()
        assert scoreboard.version == before + 3


class TestBankPorts:
    def test_write_port_conflict_within_bank(self, make_scoreboard):
        """V0 and V1 share a bank with a single write port (section 3)."""
        scoreboard = make_scoreboard(model_bank_ports=True)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        writer_same_bank = vload(V(1), vl=64, address=0)
        writer_other_bank = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer_same_bank, now=0) >= 100
        assert scoreboard.earliest_dispatch(writer_other_bank, now=0) == 0

    def test_two_read_ports_per_bank(self, make_scoreboard):
        scoreboard = make_scoreboard(model_bank_ports=True)
        scoreboard.record_read(V(0), now=0, read_end=80)
        scoreboard.record_read(V(1), now=0, read_end=90)
        # third concurrent reader of bank 0 must wait for a port
        reader = vstore(V(0), A(0), vl=64, address=0)
        assert scoreboard.earliest_dispatch(reader, now=0) >= 80

    def test_read_port_frees_when_a_reader_finishes(self, make_scoreboard):
        scoreboard = make_scoreboard(model_bank_ports=True)
        scoreboard.record_read(V(0), now=0, read_end=80)
        scoreboard.record_read(V(1), now=0, read_end=90)
        reader = vstore(V(0), A(0), vl=64, address=0)
        # at cycle 85 only the reader ending at 90 is active: a port is free
        assert scoreboard.earliest_dispatch(reader, now=85) == 85

    def test_bank_ports_can_be_disabled(self, make_scoreboard):
        scoreboard = make_scoreboard(model_bank_ports=False)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        writer_same_bank = vload(V(1), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer_same_bank, now=0) == 0

    def test_different_banks_never_conflict(self, make_scoreboard):
        scoreboard = make_scoreboard(model_bank_ports=True)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        scoreboard.record_write(V(2), first_element_at=10, ready_at=100, chainable=False)
        writer = vload(V(4), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 0


class TestBackendSelection:
    def test_default_backend_follows_the_env_switch(self):
        # columnar unless the object-scoreboard CI leg forces the fallback
        forced_object = bool(os.environ.get("REPRO_OBJECT_SCOREBOARD"))
        assert columnar_scoreboard_enabled() == (not forced_object)
        expected_name = "object" if forced_object else "columnar"
        expected_cls = Scoreboard if forced_object else ColumnarScoreboard
        assert scoreboard_backend_name() == expected_name
        assert isinstance(create_scoreboard(), expected_cls)

    def test_runtime_switch_selects_the_object_fallback(self):
        previous = set_columnar_scoreboard_enabled(False)
        try:
            assert scoreboard_backend_name() == "object"
            assert isinstance(create_scoreboard(), Scoreboard)
        finally:
            set_columnar_scoreboard_enabled(previous)
        assert columnar_scoreboard_enabled() == previous

    def test_factory_forwards_model_settings(self):
        scoreboard = create_scoreboard(model_bank_ports=False, allow_chaining=False)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        # chaining disabled: the (would-be chainable) producer blocks dispatch
        assert scoreboard.earliest_dispatch(consumer, now=0) == 100
        # bank ports disabled: no write-port conflict inside bank 0
        writer = vload(V(1), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=100) == 100

    def test_columnar_scoreboard_pickles_round_trip(self):
        scoreboard = ColumnarScoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=False)
        scoreboard.record_read(V(1), now=0, read_end=90)
        clone = pickle.loads(pickle.dumps(scoreboard))
        assert clone.version == scoreboard.version
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert clone.earliest_dispatch(consumer, now=10) == scoreboard.earliest_dispatch(
            consumer, now=10
        )
        assert clone.state(V(0)).ready_at == 150
