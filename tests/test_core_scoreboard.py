"""Unit tests for the register scoreboard: hazards, chaining, bank ports."""

from __future__ import annotations

import pytest

from repro.core.scoreboard import Scoreboard
from repro.isa.builder import vadd, vload, vstore
from repro.isa.opcodes import Opcode
from repro.isa.instruction import Instruction
from repro.isa.registers import A, S, V


class TestDataHazards:
    def test_fresh_registers_impose_no_constraints(self):
        scoreboard = Scoreboard()
        instruction = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(instruction, now=5) == 5

    def test_non_chainable_source_blocks_dispatch(self):
        """Loads are not chainable: consumers wait for the full load (section 3)."""
        scoreboard = Scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=False)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=10) == 150

    def test_chainable_source_does_not_block_dispatch(self):
        """FU-produced results allow fully flexible chaining (section 3)."""
        scoreboard = Scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=10) == 10

    def test_scalar_source_always_waits_for_completion(self):
        scoreboard = Scoreboard()
        scoreboard.record_write(S(1), first_element_at=40, ready_at=40, chainable=True)
        consumer = Instruction(Opcode.ADD_S, dest=S(2), srcs=(S(1),))
        assert scoreboard.earliest_dispatch(consumer, now=0) == 40

    def test_waw_hazard(self):
        scoreboard = Scoreboard()
        scoreboard.record_write(V(2), first_element_at=30, ready_at=90, chainable=True)
        writer = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 90

    def test_war_hazard(self):
        scoreboard = Scoreboard()
        scoreboard.record_read(V(2), now=0, read_end=75)
        writer = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 75

    def test_chain_start_uses_first_element_times(self):
        scoreboard = Scoreboard()
        scoreboard.record_write(V(0), first_element_at=42, ready_at=170, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.chain_start(consumer, candidate_start=10) == 42
        assert scoreboard.chain_start(consumer, candidate_start=60) == 60

    def test_chain_start_ignores_completed_producers(self):
        scoreboard = Scoreboard()
        scoreboard.record_write(V(0), first_element_at=5, ready_at=9, chainable=True)
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.chain_start(consumer, candidate_start=20) == 20

    def test_reset_clears_state(self):
        scoreboard = Scoreboard()
        scoreboard.record_write(V(0), first_element_at=60, ready_at=150, chainable=False)
        scoreboard.reset()
        consumer = vadd(V(2), V(0), V(1), vl=64)
        assert scoreboard.earliest_dispatch(consumer, now=0) == 0


class TestBankPorts:
    def test_write_port_conflict_within_bank(self):
        """V0 and V1 share a bank with a single write port (section 3)."""
        scoreboard = Scoreboard(model_bank_ports=True)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        writer_same_bank = vload(V(1), vl=64, address=0)
        writer_other_bank = vload(V(2), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer_same_bank, now=0) >= 100
        assert scoreboard.earliest_dispatch(writer_other_bank, now=0) == 0

    def test_two_read_ports_per_bank(self):
        scoreboard = Scoreboard(model_bank_ports=True)
        scoreboard.record_read(V(0), now=0, read_end=80)
        scoreboard.record_read(V(1), now=0, read_end=90)
        # third concurrent reader of bank 0 must wait for a port
        reader = vstore(V(0), A(0), vl=64, address=0)
        assert scoreboard.earliest_dispatch(reader, now=0) >= 80

    def test_bank_ports_can_be_disabled(self):
        scoreboard = Scoreboard(model_bank_ports=False)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        writer_same_bank = vload(V(1), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer_same_bank, now=0) == 0

    def test_different_banks_never_conflict(self):
        scoreboard = Scoreboard(model_bank_ports=True)
        scoreboard.record_write(V(0), first_element_at=10, ready_at=100, chainable=False)
        scoreboard.record_write(V(2), first_element_at=10, ready_at=100, chainable=False)
        writer = vload(V(4), vl=64, address=0)
        assert scoreboard.earliest_dispatch(writer, now=0) == 0
