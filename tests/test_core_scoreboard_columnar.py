"""Property tests: columnar vs. object scoreboard call-by-call agreement.

The columnar hazard tables replace the object scoreboard's per-register dict
and per-bank read-end lists with flat int columns and top-K port slots.  The
compression is only valid under the engine's contract — ``now`` never
decreases across successive calls on one scoreboard — so this suite drives
both implementations through identical random *monotonic* sequences of
``record_read`` / ``record_write`` / ``reset`` operations interleaved with
``earliest_dispatch`` / ``chain_start`` probes, and asserts that every probe
result and every per-register state column agree, across both
``model_bank_ports`` and ``allow_chaining`` settings.

The sequences deliberately oversample the corners where the two data layouts
could diverge: many readers piling onto one bank (port-slot eviction), reads
and writes aliasing the same dense register key, and probes landing exactly
on busy-interval boundaries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoreboard import ColumnarScoreboard, Scoreboard
from repro.isa.builder import (
    scalar_load,
    scalar_op,
    vadd,
    vload,
    vmul,
    vreduce,
    vstore,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V, all_registers

ALL_REGISTERS = all_registers()

# Small register pools bias the sequences towards aliasing and same-bank
# traffic; the full pool keeps every dense key reachable.
register_index = st.integers(min_value=0, max_value=7)
crowded_vector = st.integers(min_value=0, max_value=1)  # one bank, two regs
vector_length = st.sampled_from([1, 2, 16, 64, 128])


@st.composite
def probe_instruction(draw):
    """A random instruction exercising one of the hazard-check shapes."""
    shape = draw(
        st.sampled_from(
            ["vadd", "vmul", "vload", "vstore", "vreduce", "scalar", "scalar_load"]
        )
    )
    vl = draw(vector_length)
    crowded = draw(st.booleans())
    index = crowded_vector if crowded else register_index
    a, b, c = draw(index), draw(index), draw(index)
    if shape == "vadd":
        return vadd(V(a), V(b), V(c), vl=vl)
    if shape == "vmul":
        return vmul(V(a), V(b), V(c), vl=vl)
    if shape == "vload":
        return vload(V(a), vl=vl, address=0, stride=draw(st.sampled_from([1, 8])))
    if shape == "vstore":
        return vstore(V(a), A(b), vl=vl, address=0)
    if shape == "vreduce":
        return vreduce(S(a), V(b), vl=vl)
    if shape == "scalar_load":
        return scalar_load(S(a), address=0)
    return scalar_op(Opcode.ADD_S, S(a), S(b), A(c))


@st.composite
def operation(draw):
    """One scoreboard call: mutation or probe, with relative time deltas."""
    kind = draw(
        st.sampled_from(
            ["read", "read", "write", "write", "probe", "probe", "chain", "reset"]
        )
    )
    advance = draw(st.integers(min_value=0, max_value=25))
    if kind == "read":
        register = draw(st.sampled_from(ALL_REGISTERS))
        duration = draw(st.integers(min_value=0, max_value=200))
        return ("read", advance, register, duration)
    if kind == "write":
        register = draw(st.sampled_from(ALL_REGISTERS))
        first_delta = draw(st.integers(min_value=0, max_value=60))
        ready_delta = draw(st.integers(min_value=0, max_value=300))
        chainable = draw(st.booleans())
        return ("write", advance, register, first_delta, ready_delta, chainable)
    if kind == "probe":
        return ("probe", advance, draw(probe_instruction()))
    if kind == "chain":
        candidate_delta = draw(st.integers(min_value=0, max_value=120))
        return ("chain", advance, draw(probe_instruction()), candidate_delta)
    return ("reset", advance)


def apply_sequence(boards, ops):
    """Drive all boards through ``ops`` with a shared monotonic clock.

    Yields, per probe-style op, the tuple of per-board results so the caller
    can assert agreement mid-run (divergence is reported at the first call
    that differs, not only in the final state).
    """
    now = 0
    for op in ops:
        kind = op[0]
        now += op[1]
        if kind == "read":
            _, _, register, duration = op
            for board in boards:
                board.record_read(register, now, now + duration)
        elif kind == "write":
            _, _, register, first_delta, ready_delta, chainable = op
            for board in boards:
                board.record_write(
                    register,
                    first_element_at=now + first_delta,
                    ready_at=now + ready_delta,
                    chainable=chainable,
                )
        elif kind == "probe":
            yield op, tuple(board.earliest_dispatch(op[2], now) for board in boards)
        elif kind == "chain":
            _, _, instruction, candidate_delta = op
            yield op, tuple(
                board.chain_start(instruction, now + candidate_delta)
                for board in boards
            )
        else:
            for board in boards:
                board.reset()


def assert_same_state(columnar, fallback):
    """Every register's hazard columns agree between the two backends."""
    for register in ALL_REGISTERS:
        flat = columnar.state(register)
        obj = fallback.state(register)
        assert flat.ready_at == obj.ready_at, register
        assert flat.first_element_at == obj.first_element_at, register
        assert flat.chainable == obj.chainable, register
        assert flat.write_busy_until == obj.write_busy_until, register
        assert flat.read_busy_until == obj.read_busy_until, register


class TestColumnarAgreesWithObjectScoreboard:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(operation(), min_size=1, max_size=60),
        model_bank_ports=st.booleans(),
        allow_chaining=st.booleans(),
    )
    def test_random_sequences_agree(self, ops, model_bank_ports, allow_chaining):
        columnar = ColumnarScoreboard(
            model_bank_ports=model_bank_ports, allow_chaining=allow_chaining
        )
        fallback = Scoreboard(
            model_bank_ports=model_bank_ports, allow_chaining=allow_chaining
        )
        for op, (flat_result, object_result) in apply_sequence(
            (columnar, fallback), ops
        ):
            assert flat_result == object_result, op
        assert columnar.version == fallback.version
        assert_same_state(columnar, fallback)

    @settings(max_examples=60, deadline=None)
    @given(
        reads=st.lists(
            st.tuples(
                crowded_vector,  # register inside one bank
                st.integers(min_value=0, max_value=6),  # clock advance
                st.integers(min_value=0, max_value=40),  # read duration
            ),
            min_size=3,
            max_size=30,
        ),
        probe_gap=st.integers(min_value=0, max_value=50),
    )
    def test_port_slot_eviction_matches_prune_and_sort(self, reads, probe_gap):
        """Many readers on one bank: top-K slots vs. the fallback's full list."""
        columnar = ColumnarScoreboard()
        fallback = Scoreboard()
        now = 0
        reader = vstore(V(0), A(0), vl=16, address=0)
        for index, advance, duration in reads:
            now += advance
            for board in (columnar, fallback):
                board.record_read(V(index), now, now + duration)
            probe_at = now + probe_gap
            assert columnar.earliest_dispatch(reader, probe_at) == (
                fallback.earliest_dispatch(reader, probe_at)
            )

    @settings(max_examples=60, deadline=None)
    @given(
        ready_delta=st.integers(min_value=0, max_value=64),
        probe_delta=st.integers(min_value=0, max_value=64),
        chainable=st.booleans(),
        allow_chaining=st.booleans(),
    )
    def test_chain_window_boundaries_agree(
        self, ready_delta, probe_delta, chainable, allow_chaining
    ):
        """Probes landing exactly on ``ready_at`` boundaries stay identical."""
        columnar = ColumnarScoreboard(allow_chaining=allow_chaining)
        fallback = Scoreboard(allow_chaining=allow_chaining)
        for board in (columnar, fallback):
            board.record_write(
                V(0), first_element_at=10, ready_at=10 + ready_delta, chainable=chainable
            )
        consumer = vadd(V(2), V(0), V(4), vl=32)
        now = 10 + probe_delta
        assert columnar.earliest_dispatch(consumer, now) == fallback.earliest_dispatch(
            consumer, now
        )
        candidate = 10 + probe_delta
        assert columnar.chain_start(consumer, candidate) == fallback.chain_start(
            consumer, candidate
        )
