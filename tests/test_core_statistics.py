"""Unit and property-based tests for interval recording and the FU-state breakdown."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.statistics import (
    FU_STATE_NAMES,
    IntervalRecorder,
    JobRecord,
    SimulationStats,
    ThreadStats,
    fu_state_breakdown,
    state_name,
)
from repro.errors import SimulationError


class TestIntervalRecorder:
    def test_busy_cycles_union(self):
        recorder = IntervalRecorder("FU1")
        recorder.record(0, 10)
        recorder.record(5, 15)
        recorder.record(20, 25)
        assert recorder.busy_cycles() == 20
        assert recorder.merged() == [(0, 15), (20, 25)]

    def test_horizon_clipping(self):
        recorder = IntervalRecorder("FU1")
        recorder.record(0, 100)
        assert recorder.busy_cycles(horizon=40) == 40

    def test_zero_length_ignored(self):
        recorder = IntervalRecorder("FU1")
        recorder.record(5, 5)
        assert recorder.busy_cycles() == 0

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            IntervalRecorder("x").record(10, 5)

    def test_reset(self):
        recorder = IntervalRecorder("FU1")
        recorder.record(0, 10)
        recorder.reset()
        assert recorder.busy_cycles() == 0

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 100)), min_size=0, max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_busy_cycles_never_exceed_span(self, intervals):
        recorder = IntervalRecorder("x")
        for start, length in intervals:
            recorder.record(start, start + length)
        busy = recorder.busy_cycles()
        if intervals:
            span = max(start + length for start, length in intervals)
            assert 0 <= busy <= span
        else:
            assert busy == 0


class TestFuStateBreakdown:
    def test_all_idle(self):
        breakdown = fu_state_breakdown(
            IntervalRecorder("FU2"), IntervalRecorder("FU1"), IntervalRecorder("LD"), 100
        )
        assert breakdown["( , , )"] == 100
        assert sum(breakdown.values()) == 100

    def test_simple_overlap(self):
        fu2, fu1, ld = IntervalRecorder("FU2"), IntervalRecorder("FU1"), IntervalRecorder("LD")
        ld.record(0, 60)
        fu1.record(20, 40)
        breakdown = fu_state_breakdown(fu2, fu1, ld, 100)
        assert breakdown["( , ,LD)"] == 40  # [0,20) and [40,60)
        assert breakdown["( ,FU1,LD)"] == 20  # [20,40)
        assert breakdown["( , , )"] == 40  # [60,100)
        assert sum(breakdown.values()) == 100

    def test_all_three_busy(self):
        fu2, fu1, ld = IntervalRecorder("FU2"), IntervalRecorder("FU1"), IntervalRecorder("LD")
        for recorder in (fu2, fu1, ld):
            recorder.record(10, 20)
        breakdown = fu_state_breakdown(fu2, fu1, ld, 30)
        assert breakdown["(FU2,FU1,LD)"] == 10
        assert breakdown["( , , )"] == 20

    def test_intervals_past_horizon_are_clipped(self):
        fu2, fu1, ld = IntervalRecorder("FU2"), IntervalRecorder("FU1"), IntervalRecorder("LD")
        ld.record(50, 500)
        breakdown = fu_state_breakdown(fu2, fu1, ld, 100)
        assert breakdown["( , ,LD)"] == 50
        assert sum(breakdown.values()) == 100

    def test_zero_cycles(self):
        breakdown = fu_state_breakdown(
            IntervalRecorder("a"), IntervalRecorder("b"), IntervalRecorder("c"), 0
        )
        assert all(value == 0 for value in breakdown.values())

    def test_state_names(self):
        assert state_name(False, False, False) == "( , , )"
        assert state_name(True, True, True) == "(FU2,FU1,LD)"
        assert state_name(False, True, False) == "( ,FU1, )"
        assert len(FU_STATE_NAMES) == 8

    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 2),  # which unit
                st.integers(0, 300),  # start
                st.integers(1, 80),  # length
            ),
            min_size=0,
            max_size=60,
        ),
        total=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_breakdown_always_partitions_total_cycles(self, data, total):
        """The eight states always partition the execution time exactly."""
        recorders = [IntervalRecorder("FU2"), IntervalRecorder("FU1"), IntervalRecorder("LD")]
        for unit, start, length in data:
            recorders[unit].record(start, start + length)
        breakdown = fu_state_breakdown(*recorders, total)
        assert sum(breakdown.values()) == total
        assert all(value >= 0 for value in breakdown.values())


class TestSimulationStats:
    def test_metric_properties(self):
        stats = SimulationStats(
            cycles=200,
            instructions=100,
            memory_port_busy_cycles=150,
            vector_arithmetic_operations=90,
        )
        assert stats.memory_port_occupancy == pytest.approx(0.75)
        assert stats.memory_port_idle_fraction == pytest.approx(0.25)
        assert stats.vopc == pytest.approx(0.45)
        assert stats.instructions_per_cycle == pytest.approx(0.5)

    def test_zero_cycles_are_safe(self):
        stats = SimulationStats()
        assert stats.memory_port_occupancy == 0.0
        assert stats.vopc == 0.0
        assert stats.instructions_per_cycle == 0.0

    def test_occupancy_clamped_to_one(self):
        stats = SimulationStats(cycles=10, memory_port_busy_cycles=20)
        assert stats.memory_port_occupancy == 1.0

    def test_thread_lookup(self):
        stats = SimulationStats(threads=[ThreadStats(thread_id=0), ThreadStats(thread_id=1)])
        assert stats.thread(1).thread_id == 1
        with pytest.raises(SimulationError):
            stats.thread(7)

    def test_current_job_tracking(self):
        thread = ThreadStats(thread_id=0)
        assert thread.current_job is None
        thread.jobs.append(JobRecord(program="p", thread_id=0, start_cycle=0))
        assert thread.current_job is not None
        thread.jobs[-1].end_cycle = 10
        thread.jobs[-1].completed = True
        assert thread.current_job is None
