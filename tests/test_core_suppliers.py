"""Unit tests for job suppliers and the hardware-context fetch behaviour."""

from __future__ import annotations

import pytest

from repro.core.context import HardwareContext
from repro.core.suppliers import (
    Job,
    JobQueueSupplier,
    RepeatingSupplier,
    SingleJobSupplier,
)
from repro.isa.builder import nop, scalar_op
from repro.isa.opcodes import Opcode
from repro.isa.registers import S
from repro.trace.dixie import trace_program


def tiny_job(name="tiny", count=3):
    return Job.from_instructions(name, [nop() for _ in range(count)])


class TestJob:
    def test_job_streams_are_fresh_each_time(self):
        job = tiny_job()
        assert list(job.open_stream()) == list(job.open_stream())

    def test_from_program(self, triad_program):
        job = Job.from_program(triad_program)
        assert job.name == triad_program.name
        assert len(list(job.open_stream())) == triad_program.dynamic_instruction_count

    def test_from_trace(self, triad_program):
        trace = trace_program(triad_program)
        job = Job.from_trace(trace)
        assert list(job.open_stream()) == list(triad_program.instructions())


class TestSuppliers:
    def test_single_job_supplier(self):
        supplier = SingleJobSupplier(tiny_job())
        assert supplier.next_job() is not None
        assert supplier.next_job() is None

    def test_repeating_supplier(self):
        supplier = RepeatingSupplier(tiny_job())
        for _ in range(5):
            assert supplier.next_job() is not None
        assert supplier.times_supplied == 5

    def test_repeating_supplier_with_limit(self):
        supplier = RepeatingSupplier(tiny_job(), max_restarts=1)
        assert supplier.next_job() is not None
        assert supplier.next_job() is not None
        assert supplier.next_job() is None

    def test_job_queue_supplier(self):
        queue = JobQueueSupplier([tiny_job("a"), tiny_job("b")])
        assert queue.remaining == 2
        assert queue.next_job().name == "a"
        assert queue.next_job().name == "b"
        assert queue.next_job() is None
        assert queue.dispatched == ["a", "b"]


class TestHardwareContext:
    def test_head_and_consume(self):
        context = HardwareContext(0, SingleJobSupplier(tiny_job(count=2)))
        first = context.head(now=0)
        assert first is not None
        context.consume(first)
        second = context.head(now=1)
        context.consume(second)
        assert context.head(now=2) is None
        assert context.finished
        assert context.completed_programs == 1

    def test_job_records_track_boundaries(self):
        context = HardwareContext(0, JobQueueSupplier([tiny_job("a", 2), tiny_job("b", 1)]))
        ordinals = []
        while True:
            head = context.head(now=context.stats.instructions)
            if head is None:
                break
            ordinals.append(context.job_ordinal)
            context.consume(head)
        assert [record.program for record in context.stats.jobs] == ["a", "b"]
        assert all(record.completed for record in context.stats.jobs)
        # per-job instruction counts are reduced from the columnar dispatch
        # log at engine finalization; the context exposes the job ordinal the
        # log records per dispatch
        assert ordinals == [0, 0, 1]

    def test_job_instruction_counts_reduced_from_event_log(self):
        from repro.core.config import MachineConfig
        from repro.core.engine import SimulationEngine

        engine = SimulationEngine(
            MachineConfig.reference(),
            [JobQueueSupplier([tiny_job("a", 2), tiny_job("b", 1)])],
        )
        result = engine.run()
        records = result.jobs()
        assert [(record.program, record.instructions) for record in records] == [
            ("a", 2),
            ("b", 1),
        ]

    def test_instruction_limit_stops_early(self):
        context = HardwareContext(
            0, SingleJobSupplier(tiny_job(count=10)), instruction_limit=4
        )
        dispatched = 0
        while True:
            head = context.head(now=dispatched)
            if head is None:
                break
            context.consume(head)
            dispatched += 1
        assert dispatched == 4
        assert not context.stats.jobs[0].completed

    def test_statistics_accumulate_by_kind(self, triad_program):
        # per-kind counters are reduced from the columnar dispatch log when a
        # run finalizes; only the live `instructions` counter (instruction
        # limits, least-service scheduling) accumulates during the run
        from repro.core.config import MachineConfig
        from repro.core.engine import SimulationEngine

        engine = SimulationEngine(
            MachineConfig.reference(), [SingleJobSupplier(Job.from_program(triad_program))]
        )
        result = engine.run()
        stats = result.stats.thread(0)
        assert stats.vector_instructions > 0
        assert stats.scalar_instructions > 0
        assert (
            stats.instructions
            == stats.vector_instructions + stats.scalar_instructions
        )

    def test_lost_cycle_accounting(self):
        context = HardwareContext(0, SingleJobSupplier(tiny_job()))
        context.record_lost_cycle()
        context.record_lost_cycle()
        assert context.stats.lost_decode_cycles == 2

    def test_current_job_name(self):
        context = HardwareContext(0, SingleJobSupplier(tiny_job("prog")))
        assert context.current_job_name is None
        context.head(now=0)
        assert context.current_job_name == "prog"
