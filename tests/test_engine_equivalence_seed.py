"""Cycle-identical equivalence of the fast-path engine against the seed oracle.

The fast-path rework (columnar instruction decode, incremental ready-time
caching, specialized run loops, per-stride bank memoization) must not change a
single statistic of any simulation.  This suite runs the optimized
:class:`repro.core.engine.SimulationEngine` next to the frozen naive
implementation in :mod:`tests.seed_engine` and asserts byte-identical results:
total cycles, every counter, per-thread statistics and job records, vector
functional-unit busy intervals, and memory-port occupancy — across all four
machine models (reference, multithreaded, dual-scalar, Cray-style
multi-issue), every scheduling policy, bank-conflict modeling on and off, and
fractional runs with instruction limits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.engine import SimulationEngine
from repro.core.results import SimulationResult
from repro.core.suppliers import (
    Job,
    JobQueueSupplier,
    JobSupplier,
    RepeatingSupplier,
    SingleJobSupplier,
)
from repro.isa.builder import (
    scalar_load,
    scalar_op,
    vadd,
    vload,
    vmul,
    vreduce,
    vstore,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V
from repro.workloads.generator import LoopSpec, WorkloadSpec, build_workload
from repro.workloads.kernels import kernel_names

from tests.seed_engine import SeedEngine

# --------------------------------------------------------------------------- #
# workload generation
# --------------------------------------------------------------------------- #
workload_strategy = st.builds(
    WorkloadSpec,
    name=st.just("equiv"),
    vector_instructions=st.integers(min_value=20, max_value=120),
    scalar_instructions=st.integers(min_value=15, max_value=120),
    loops=st.tuples(
        st.builds(
            LoopSpec,
            kernel=st.sampled_from(sorted(kernel_names())),
            vl=st.integers(min_value=2, max_value=128),
            weight=st.just(1.0),
            stride=st.sampled_from([1, 2, 7, 8, 64]),
        )
    ),
    scalar_loop_fraction=st.floats(min_value=0.0, max_value=0.8),
    outer_passes=st.integers(min_value=1, max_value=3),
)


def _make_jobs(spec_names: list[str], seed_vl: int) -> list[Job]:
    jobs = []
    for index, kernel in enumerate(spec_names):
        spec = WorkloadSpec(
            name=f"{kernel}-{index}",
            vector_instructions=40 + 25 * index,
            scalar_instructions=30 + 10 * index,
            loops=(LoopSpec(kernel=kernel, vl=seed_vl, weight=1.0, stride=1 + index),),
            outer_passes=1 + index % 2,
        )
        jobs.append(Job.from_program(build_workload(spec)))
    return jobs


# --------------------------------------------------------------------------- #
# deep comparison
# --------------------------------------------------------------------------- #
def assert_cycle_identical(fast: SimulationResult, seed: SimulationResult) -> None:
    """Assert that two runs produced byte-identical statistics."""
    assert fast.stop_reason == seed.stop_reason
    fast_stats, seed_stats = fast.stats, seed.stats
    for counter in (
        "cycles",
        "instructions",
        "scalar_instructions",
        "vector_instructions",
        "vector_operations",
        "vector_arithmetic_operations",
        "memory_transactions",
        "memory_port_busy_cycles",
        "memory_ports",
        "decode_busy_cycles",
        "decode_lost_cycles",
        "decode_idle_cycles",
    ):
        assert getattr(fast_stats, counter) == getattr(seed_stats, counter), counter
    # vector functional-unit busy intervals (figure 4 inputs)
    for name in ("fu1_intervals", "fu2_intervals", "ld_intervals"):
        fast_rec = getattr(fast_stats, name)
        seed_rec = getattr(seed_stats, name)
        assert sorted(fast_rec.intervals) == sorted(seed_rec.intervals), name
    # per-thread statistics and job records (figure 9 inputs)
    assert len(fast_stats.threads) == len(seed_stats.threads)
    for fast_thread, seed_thread in zip(fast_stats.threads, seed_stats.threads):
        for counter in (
            "thread_id",
            "instructions",
            "scalar_instructions",
            "vector_instructions",
            "vector_operations",
            "memory_transactions",
            "completed_programs",
            "lost_decode_cycles",
        ):
            assert getattr(fast_thread, counter) == getattr(seed_thread, counter), counter
        assert len(fast_thread.jobs) == len(seed_thread.jobs)
        for fast_job, seed_job in zip(fast_thread.jobs, seed_thread.jobs):
            assert fast_job.program == seed_job.program
            assert fast_job.thread_id == seed_job.thread_id
            assert fast_job.start_cycle == seed_job.start_cycle
            assert fast_job.end_cycle == seed_job.end_cycle
            assert fast_job.instructions == seed_job.instructions
            assert fast_job.completed == seed_job.completed
    # derived metrics follow from the counters, but check the paper's two
    # headline ones anyway
    assert fast.memory_port_occupancy == seed.memory_port_occupancy
    assert fast.vopc == seed.vopc
    # the figure-4 state breakdown must survive the columnar reduction
    # (flat-array recorders + vectorized sweep vs the seed's object path)
    assert fast.fu_state_breakdown() == seed.fu_state_breakdown()


def run_both(
    config: MachineConfig,
    make_suppliers,
    *,
    instruction_limits=None,
    stop_when_completed_on_context0: bool = False,
) -> tuple[SimulationResult, SimulationResult]:
    """Run the optimized and the seed engine on identical fresh suppliers."""
    fast_engine = SimulationEngine(
        config, make_suppliers(), instruction_limits=instruction_limits
    )
    seed_engine = SeedEngine(
        config, make_suppliers(), instruction_limits=instruction_limits
    )
    if stop_when_completed_on_context0:
        fast_result = fast_engine.run(
            stop_when=lambda engine: engine.contexts[0].completed_programs >= 1
        )
        seed_result = seed_engine.run(
            stop_when=lambda engine: engine.contexts[0].completed_programs >= 1
        )
    else:
        fast_result = fast_engine.run()
        seed_result = seed_engine.run()
    return fast_result, seed_result


# --------------------------------------------------------------------------- #
# model 1: the reference architecture
# --------------------------------------------------------------------------- #
class TestReferenceEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(spec=workload_strategy, latency=st.sampled_from([1, 25, 50, 100]))
    def test_single_context_runs_are_cycle_identical(self, spec, latency):
        job = Job.from_program(build_workload(spec))
        config = MachineConfig.reference(latency)
        fast, seed = run_both(config, lambda: [SingleJobSupplier(job)])
        assert_cycle_identical(fast, seed)

    @settings(max_examples=8, deadline=None)
    @given(spec=workload_strategy, limit=st.integers(min_value=5, max_value=150))
    def test_fractional_runs_with_instruction_limits(self, spec, limit):
        job = Job.from_program(build_workload(spec))
        config = MachineConfig.reference(50)
        fast, seed = run_both(
            config, lambda: [SingleJobSupplier(job)], instruction_limits=[limit]
        )
        assert_cycle_identical(fast, seed)

    @settings(max_examples=8, deadline=None)
    @given(
        spec=workload_strategy,
        num_banks=st.sampled_from([2, 16, 64]),
        busy=st.sampled_from([2, 4, 10]),
    )
    def test_bank_conflict_model_is_cycle_identical(self, spec, num_banks, busy):
        job = Job.from_program(build_workload(spec))
        config = MachineConfig(
            name="banked",
            num_contexts=1,
            model_bank_conflicts=True,
            num_memory_banks=num_banks,
            bank_busy_cycles=busy,
        )
        fast, seed = run_both(config, lambda: [SingleJobSupplier(job)])
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# model 2: the multithreaded architecture
# --------------------------------------------------------------------------- #
class TestMultithreadedEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        num_contexts=st.sampled_from([2, 3, 4]),
        scheduler=st.sampled_from(["unfair", "round_robin", "least_service"]),
        seed_vl=st.sampled_from([4, 32, 128]),
    )
    def test_groupings_runs_are_cycle_identical(self, num_contexts, scheduler, seed_vl):
        kernels = (sorted(kernel_names()) * 2)[:num_contexts]
        jobs = _make_jobs(kernels, seed_vl)
        config = MachineConfig.multithreaded(num_contexts, 50, scheduler=scheduler)

        def make_suppliers() -> list[JobSupplier]:
            suppliers: list[JobSupplier] = [SingleJobSupplier(jobs[0])]
            suppliers.extend(RepeatingSupplier(job) for job in jobs[1:])
            return suppliers

        fast, seed = run_both(
            config, make_suppliers, stop_when_completed_on_context0=True
        )
        assert_cycle_identical(fast, seed)

    @settings(max_examples=8, deadline=None)
    @given(
        num_contexts=st.sampled_from([2, 4]),
        latency=st.sampled_from([1, 50, 100]),
        seed_vl=st.sampled_from([8, 64]),
    )
    def test_job_queue_runs_are_cycle_identical(self, num_contexts, latency, seed_vl):
        jobs = _make_jobs(sorted(kernel_names())[:5], seed_vl)
        config = MachineConfig.multithreaded(num_contexts, latency)

        def make_suppliers() -> list[JobSupplier]:
            queue = JobQueueSupplier(jobs)
            return [queue for _ in range(num_contexts)]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)

    @settings(max_examples=6, deadline=None)
    @given(spec=workload_strategy, crossbar=st.sampled_from([1, 3, 50]))
    def test_crossbar_sweep_is_cycle_identical(self, spec, crossbar):
        job = Job.from_program(build_workload(spec))
        config = MachineConfig.multithreaded(2, 50, crossbar_latency=crossbar)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(job), JobQueueSupplier([])]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# model 3: the dual-scalar (Fujitsu-style) machine
# --------------------------------------------------------------------------- #
class TestDualScalarEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed_vl=st.sampled_from([4, 32, 128]),
        latency=st.sampled_from([1, 50, 100]),
    )
    def test_dual_scalar_groupings_are_cycle_identical(self, seed_vl, latency):
        jobs = _make_jobs(sorted(kernel_names())[:2], seed_vl)
        config = MachineConfig.dual_scalar_fujitsu(latency)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(jobs[0]), RepeatingSupplier(jobs[1])]

        fast, seed = run_both(
            config, make_suppliers, stop_when_completed_on_context0=True
        )
        assert_cycle_identical(fast, seed)

    @settings(max_examples=6, deadline=None)
    @given(spec=workload_strategy)
    def test_dual_scalar_job_queue_is_cycle_identical(self, spec):
        job = Job.from_program(build_workload(spec))
        config = MachineConfig.dual_scalar_fujitsu()

        def make_suppliers() -> list[JobSupplier]:
            queue = JobQueueSupplier([job])
            return [queue, queue]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# model 4: the Cray-style multi-issue / multi-port machine
# --------------------------------------------------------------------------- #
class TestCrayStyleEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        num_contexts=st.sampled_from([2, 4]),
        issue_width=st.sampled_from([2, 3]),
        ports=st.sampled_from([1, 3]),
        seed_vl=st.sampled_from([8, 64]),
    )
    def test_multi_issue_runs_are_cycle_identical(
        self, num_contexts, issue_width, ports, seed_vl
    ):
        jobs = _make_jobs((sorted(kernel_names()) * 2)[:num_contexts], seed_vl)
        config = MachineConfig.cray_style(
            num_contexts, 50, num_memory_ports=ports,
            issue_width=min(issue_width, num_contexts),
        )

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(job) for job in jobs]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# the pure-Python (no-numpy) reduction fallback, against the same oracle
# --------------------------------------------------------------------------- #
class TestFallbackReductionEquivalence:
    """One equivalence case per machine model with numpy disabled.

    The columnar pipeline must produce byte-identical statistics through the
    pure-Python fallback reduction too (the PyPy / no-numpy path); CI runs
    the whole suite once with ``REPRO_PURE_PYTHON_STATS=1`` for full
    coverage and this class guards the fallback in the default matrix legs.
    """

    @pytest.fixture(autouse=True)
    def _force_fallback(self):
        from repro.core.eventlog import set_numpy_enabled

        previous = set_numpy_enabled(False)
        try:
            yield
        finally:
            set_numpy_enabled(previous)

    def test_reference_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:1], 64)
        config = MachineConfig.reference(50)
        fast, seed = run_both(config, lambda: [SingleJobSupplier(jobs[0])])
        assert_cycle_identical(fast, seed)

    def test_multithreaded_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:2], 32)
        config = MachineConfig.multithreaded(2, 50)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(jobs[0]), RepeatingSupplier(jobs[1])]

        fast, seed = run_both(
            config, make_suppliers, stop_when_completed_on_context0=True
        )
        assert_cycle_identical(fast, seed)

    def test_dual_scalar_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:2], 16)
        config = MachineConfig.dual_scalar_fujitsu(50)

        def make_suppliers() -> list[JobSupplier]:
            queue = JobQueueSupplier(jobs)
            return [queue, queue]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)

    def test_cray_style_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:4], 32)
        config = MachineConfig.cray_style(4, 50, num_memory_ports=3, issue_width=2)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(job) for job in jobs]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# the object-scoreboard fallback, against the same oracle
# --------------------------------------------------------------------------- #
class TestObjectScoreboardFallbackEquivalence:
    """One equivalence case per machine model with the object scoreboard forced.

    The columnar hazard tables are the default; the object-graph scoreboard
    remains selectable (``REPRO_OBJECT_SCOREBOARD=1``, one CI matrix leg runs
    the whole tier-1 suite that way).  This class guards the fallback inside
    the default matrix legs, mirroring the no-numpy reduction class above.
    """

    @pytest.fixture(autouse=True)
    def _force_object_scoreboard(self):
        from repro.core.scoreboard import set_columnar_scoreboard_enabled

        previous = set_columnar_scoreboard_enabled(False)
        try:
            yield
        finally:
            set_columnar_scoreboard_enabled(previous)

    def test_reference_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:1], 64)
        config = MachineConfig.reference(50)
        fast, seed = run_both(config, lambda: [SingleJobSupplier(jobs[0])])
        assert_cycle_identical(fast, seed)

    def test_multithreaded_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:2], 32)
        config = MachineConfig.multithreaded(2, 50)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(jobs[0]), RepeatingSupplier(jobs[1])]

        fast, seed = run_both(
            config, make_suppliers, stop_when_completed_on_context0=True
        )
        assert_cycle_identical(fast, seed)

    def test_dual_scalar_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:2], 16)
        config = MachineConfig.dual_scalar_fujitsu(50)

        def make_suppliers() -> list[JobSupplier]:
            queue = JobQueueSupplier(jobs)
            return [queue, queue]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)

    def test_cray_style_fallback(self):
        jobs = _make_jobs(sorted(kernel_names())[:4], 32)
        config = MachineConfig.cray_style(4, 50, num_memory_ports=3, issue_width=2)

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(job) for job in jobs]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# hazard corner cases the kernel-built workloads under-sample
# --------------------------------------------------------------------------- #
@st.composite
def hazard_corner_instructions(draw):
    """Raw instruction streams oversampling scoreboard corner cases.

    The kernel-built workloads spread vector registers across banks (the
    register allocation mimics the Convex compiler), so the generated
    streams rarely pile readers onto one bank or consume a load on the very
    next decode slot.  This strategy builds adversarial streams instead:
    same-cycle read-after-write inside one bank, chaining windows whose
    boundary sweeps across the consumer's dispatch cycle, three concurrent
    readers against the two read ports of bank 0, and tight WAW/WAR loops
    on a single register.
    """
    vl = draw(st.sampled_from([1, 2, 3, 64, 127, 128]))
    instructions = []
    blocks = draw(st.integers(min_value=3, max_value=10))
    for _ in range(blocks):
        pattern = draw(
            st.sampled_from(
                [
                    "same_cycle_raw",
                    "chain_boundary",
                    "port_pileup",
                    "waw_war",
                    "scalar_mix",
                ]
            )
        )
        if pattern == "same_cycle_raw":
            # a (non-chainable) load consumed immediately, inside one bank
            dest = draw(st.sampled_from([0, 1]))
            instructions.append(vload(V(dest), vl=vl, address=0x1000, stride=1))
            instructions.append(vadd(V(1 - dest), V(dest), V(dest), vl=vl))
        elif pattern == "chain_boundary":
            # scalar filler of drawn length sweeps the consumer's dispatch
            # cycle across the producer's ready-at / first-element boundary
            producer_vl = draw(st.sampled_from([1, 2, 64, 128]))
            instructions.append(vadd(V(0), V(2), V(4), vl=producer_vl))
            for _ in range(draw(st.integers(min_value=0, max_value=6))):
                instructions.append(scalar_op(Opcode.ADD_S, S(0), S(1), S(2)))
            instructions.append(vmul(V(6), V(0), V(2), vl=vl))
        elif pattern == "port_pileup":
            # three readers of bank 0 in flight: the 2-read-port limit binds
            instructions.append(vadd(V(2), V(0), V(1), vl=vl))
            instructions.append(vstore(V(0), A(0), vl=vl, address=0x2000))
            instructions.append(vmul(V(4), V(1), V(0), vl=vl))
        elif pattern == "waw_war":
            # write, overwrite, then read one register back-to-back
            instructions.append(vadd(V(3), V(0), V(1), vl=vl))
            instructions.append(vload(V(3), vl=vl, address=0x3000, stride=8))
            instructions.append(vstore(V(3), A(1), vl=vl, address=0x4000))
        else:
            instructions.append(scalar_load(S(3), address=0x100))
            instructions.append(scalar_op(Opcode.ADD_S, S(4), S(3), S(3)))
            instructions.append(
                vreduce(S(5), V(draw(st.sampled_from([0, 1, 2]))), vl=vl)
            )
    return instructions


class TestHazardCornerEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        instructions=hazard_corner_instructions(),
        latency=st.sampled_from([1, 2, 50]),
        allow_chaining=st.booleans(),
        model_bank_ports=st.booleans(),
    )
    def test_single_context_hazard_corners(
        self, instructions, latency, allow_chaining, model_bank_ports
    ):
        job = Job.from_instructions("hazard", instructions)
        config = MachineConfig(
            name="hazard",
            num_contexts=1,
            memory_latency=latency,
            allow_chaining=allow_chaining,
            model_bank_ports=model_bank_ports,
        )
        fast, seed = run_both(config, lambda: [SingleJobSupplier(job)])
        assert_cycle_identical(fast, seed)

    @settings(max_examples=10, deadline=None)
    @given(
        instructions=hazard_corner_instructions(),
        crossbar=st.sampled_from([1, 2, 3]),
        scheduler=st.sampled_from(["unfair", "round_robin", "least_service"]),
    )
    def test_register_key_aliasing_across_threads(
        self, instructions, crossbar, scheduler
    ):
        """Both contexts hammer the *same* architectural registers.

        The dense ``Register.key`` space repeats per hardware context, so
        the columnar hazard tables must stay strictly per-context: thread
        1's write to ``V0`` may never disturb thread 0's ``V0`` column.
        """
        job0 = Job.from_instructions("alias-0", instructions)
        job1 = Job.from_instructions("alias-1", list(reversed(instructions)))
        config = MachineConfig.multithreaded(
            2, 50, crossbar_latency=crossbar, scheduler=scheduler
        )

        def make_suppliers() -> list[JobSupplier]:
            return [SingleJobSupplier(job0), RepeatingSupplier(job1)]

        fast, seed = run_both(
            config, make_suppliers, stop_when_completed_on_context0=True
        )
        assert_cycle_identical(fast, seed)

    @settings(max_examples=8, deadline=None)
    @given(instructions=hazard_corner_instructions())
    def test_dual_scalar_hazard_corners(self, instructions):
        job = Job.from_instructions("hazard-dual", instructions)
        config = MachineConfig.dual_scalar_fujitsu(50)

        def make_suppliers() -> list[JobSupplier]:
            queue = JobQueueSupplier([job, job])
            return [queue, queue]

        fast, seed = run_both(config, make_suppliers)
        assert_cycle_identical(fast, seed)


# --------------------------------------------------------------------------- #
# trace-driven replay: both decode paths feed identical streams
# --------------------------------------------------------------------------- #
class TestTraceReplayEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(spec=workload_strategy)
    def test_trace_replay_matches_program_replay(self, spec):
        from repro.trace.dixie import trace_program

        program = build_workload(spec)
        trace = trace_program(program)
        config = MachineConfig.reference(50)
        fast, seed = run_both(
            config, lambda: [SingleJobSupplier(Job.from_trace(trace))]
        )
        assert_cycle_identical(fast, seed)
        program_fast, _ = run_both(
            config, lambda: [SingleJobSupplier(Job.from_program(program))]
        )
        assert_cycle_identical(program_fast, fast)


# --------------------------------------------------------------------------- #
# interned instruction-stream expansion, against a fresh uninterned emission
# --------------------------------------------------------------------------- #
class TestExpansionInterningEquivalence:
    """The interned expansion must be indistinguishable from a fresh one.

    ``Program.instructions`` interns expanded streams per structural
    signature (PR 5's emission hot-spot fix), so two structurally identical
    programs share one tuple.  These guards assert (a) the shared expansion
    is exactly what an uninterned emission produces, instruction for
    instruction, and (b) a simulation fed an interned stream stays
    cycle-identical to the seed oracle fed a fresh uninterned one.
    """

    @pytest.fixture(autouse=True)
    def _clean_intern_table(self):
        from repro.workloads.program import clear_expansion_intern

        clear_expansion_intern()
        yield
        clear_expansion_intern()

    @given(spec=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_interned_stream_matches_uninterned(self, spec):
        from repro.workloads.program import (
            expansion_intern_info,
            set_expansion_interning,
        )

        first = build_workload(spec)
        second = build_workload(spec)
        interned_first = list(first.instructions())
        interned_second = list(second.instructions())
        assert first._expanded is second._expanded, "identical programs must share"
        assert expansion_intern_info()["hits"] >= 1
        set_expansion_interning(False)
        try:
            fresh = list(build_workload(spec).instructions())
        finally:
            set_expansion_interning(True)
        assert interned_first == fresh
        assert interned_second == fresh

    def test_interned_run_cycle_identical_to_uninterned_seed(self):
        from repro.workloads.program import set_expansion_interning

        spec = WorkloadSpec(
            name="intern-equiv",
            vector_instructions=80,
            scalar_instructions=60,
            loops=(LoopSpec(kernel=sorted(kernel_names())[0], vl=64, weight=1.0, stride=1),),
            outer_passes=2,
        )
        config = MachineConfig.reference(50)
        # warm the intern table, then run the engine on the interned stream
        build_workload(spec).instructions()
        interned_job = Job.from_program(build_workload(spec))
        fast = SimulationEngine(config, [SingleJobSupplier(interned_job)]).run()
        set_expansion_interning(False)
        try:
            seed_job = Job.from_program(build_workload(spec))
            seed = SeedEngine(config, [SingleJobSupplier(seed_job)]).run()
        finally:
            set_expansion_interning(True)
        assert_cycle_identical(fast, seed)
