"""Unit and property tests for the columnar event-log statistics pipeline.

Covers the flat-array recording structures (:class:`DispatchLog`,
:class:`FlatIntervalRecorder`), the one-shot reductions that turn them into
``SimulationStats``/``ThreadStats``/``JobRecord`` values, and the equality of
the numpy and pure-Python reduction paths — including a hypothesis round-trip
property: random event logs reduce to exactly the same statistics through
both paths, and match a straightforward per-row reference accounting.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eventlog import (
    DISPATCH_FIELDS,
    DispatchLog,
    FlatIntervalRecorder,
    merge_interval_pairs,
    numpy_enabled,
    reduce_dispatch_log,
    set_numpy_enabled,
)
from repro.core.statistics import (
    FU_STATE_NAMES,
    IntervalRecorder,
    JobRecord,
    SimulationStats,
    ThreadStats,
    fu_state_breakdown,
)
from repro.errors import SimulationError
from repro.memory.bus import Bus
from repro.memory.request import AccessKind, MemoryRequest
from repro.memory.system import MemorySystem


@pytest.fixture
def fallback_mode():
    """Force the pure-Python reduction path for the duration of one test."""
    previous = set_numpy_enabled(False)
    try:
        yield
    finally:
        set_numpy_enabled(previous)


def both_paths(compute):
    """Evaluate ``compute()`` under the numpy and fallback paths."""
    with_numpy = compute()
    previous = set_numpy_enabled(False)
    try:
        without_numpy = compute()
    finally:
        set_numpy_enabled(previous)
    return with_numpy, without_numpy


# --------------------------------------------------------------------------- #
# dispatch-log reduction
# --------------------------------------------------------------------------- #
#: One synthetic dispatch row: (thread, job ordinal, vector?, vl).
row_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),  # thread_id
    st.integers(min_value=0, max_value=2),  # job_ordinal
    st.sampled_from(["scalar", "scalar_mem", "varith", "vmem"]),
    st.integers(min_value=1, max_value=128),  # vl when vector
)


def build_log(rows, num_threads: int = 4, jobs_per_thread: int = 3):
    """A (DispatchLog, SimulationStats) pair mirroring engine recording."""
    log = DispatchLog()
    extend = log.values.extend
    for thread_id, job_ordinal, kind, vl in rows:
        if kind == "scalar":
            extend((thread_id, job_ordinal, 0, 0, 0, 0))
        elif kind == "scalar_mem":
            extend((thread_id, job_ordinal, 0, 0, 0, 1))
        elif kind == "varith":
            extend((thread_id, job_ordinal, 1, vl, vl, 0))
        else:  # vector memory
            extend((thread_id, job_ordinal, 1, vl, 0, vl))
    threads = []
    for thread_id in range(num_threads):
        thread = ThreadStats(thread_id=thread_id)
        thread.jobs = [
            JobRecord(program=f"job-{ordinal}", thread_id=thread_id, start_cycle=0)
            for ordinal in range(jobs_per_thread)
        ]
        threads.append(thread)
    return log, SimulationStats(threads=threads)


def reference_accounting(rows, num_threads: int = 4, jobs_per_thread: int = 3):
    """Per-row object mutation, exactly as the pre-columnar engine did it."""
    stats = {
        "instructions": 0,
        "scalar_instructions": 0,
        "vector_instructions": 0,
        "vector_operations": 0,
        "vector_arithmetic_operations": 0,
        "memory_transactions": 0,
        "decode_busy_cycles": 0,
    }
    threads = {
        thread_id: {
            "instructions": 0,
            "scalar_instructions": 0,
            "vector_instructions": 0,
            "vector_operations": 0,
            "memory_transactions": 0,
            "jobs": [0] * jobs_per_thread,
        }
        for thread_id in range(num_threads)
    }
    for thread_id, job_ordinal, kind, vl in rows:
        stats["instructions"] += 1
        stats["decode_busy_cycles"] += 1
        thread = threads[thread_id]
        thread["instructions"] += 1
        thread["jobs"][job_ordinal] += 1
        if kind in ("varith", "vmem"):
            stats["vector_instructions"] += 1
            stats["vector_operations"] += vl
            thread["vector_instructions"] += 1
            thread["vector_operations"] += vl
            if kind == "varith":
                stats["vector_arithmetic_operations"] += vl
            else:
                stats["memory_transactions"] += vl
                thread["memory_transactions"] += vl
        else:
            stats["scalar_instructions"] += 1
            thread["scalar_instructions"] += 1
            if kind == "scalar_mem":
                stats["memory_transactions"] += 1
                thread["memory_transactions"] += 1
    return stats, threads


def snapshot(stats: SimulationStats):
    """Comparable snapshot of every reduced counter."""
    return (
        {key: value for key, value in stats.counters().items() if key != "cycles"},
        [
            (
                thread.thread_id,
                thread.instructions,
                thread.scalar_instructions,
                thread.vector_instructions,
                thread.vector_operations,
                thread.memory_transactions,
                tuple(record.instructions for record in thread.jobs),
            )
            for thread in stats.threads
        ],
    )


class TestDispatchLogReduction:
    def test_row_shape(self):
        log, stats = build_log([(0, 0, "varith", 8), (1, 1, "scalar", 1)])
        assert len(log) == 2
        assert log.rows()[0] == (0, 0, 1, 8, 8, 0)
        assert len(DISPATCH_FIELDS) == 6

    def test_empty_log_zeroes_everything(self):
        log, stats = build_log([])
        stats.vector_instructions = 99  # stale garbage the reduction must clear
        reduce_dispatch_log(log, stats)
        assert stats.instructions == 0
        assert stats.vector_instructions == 0
        assert all(thread.instructions == 0 for thread in stats.threads)

    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=0, max_size=120))
    def test_roundtrip_matches_reference_accounting_on_both_paths(self, rows):
        expected_stats, expected_threads = reference_accounting(rows)

        def reduce_once():
            log, stats = build_log(rows)
            reduce_dispatch_log(log, stats)
            return snapshot(stats)

        via_numpy, via_fallback = both_paths(reduce_once)
        assert via_numpy == via_fallback
        counters, threads = via_numpy
        for key, value in expected_stats.items():
            assert counters[key] == value, key
        for (
            thread_id,
            instructions,
            scalar,
            vector,
            operations,
            transactions,
            job_counts,
        ) in threads:
            expected = expected_threads[thread_id]
            assert instructions == expected["instructions"]
            assert scalar == expected["scalar_instructions"]
            assert vector == expected["vector_instructions"]
            assert operations == expected["vector_operations"]
            assert transactions == expected["memory_transactions"]
            assert list(job_counts) == expected["jobs"]

    def test_paths_agree_outside_the_engine_happy_path(self):
        """Unknown threads and pre-job rows reduce identically on both paths.

        Rows whose thread is absent from ``stats.threads`` count only
        globally; rows recorded before any job was fetched (ordinal -1)
        never land in a job count.
        """

        def reduce_once():
            log = DispatchLog()
            log.values.extend((1, 0, 1, 8, 8, 0))   # thread 1 unknown
            log.values.extend((0, -1, 0, 0, 0, 1))  # pre-job row
            thread = ThreadStats(thread_id=0)
            thread.jobs = [JobRecord(program="j", thread_id=0, start_cycle=0)]
            stats = SimulationStats(threads=[thread])
            reduce_dispatch_log(log, stats)
            return snapshot(stats)

        with_numpy, without_numpy = both_paths(reduce_once)
        assert with_numpy == without_numpy
        counters, threads = with_numpy
        assert counters["instructions"] == 2
        assert counters["vector_operations"] == 8
        assert threads[0][1] == 1  # only the known thread's row counted
        assert threads[0][-1] == (0,)  # the pre-job row hit no job record

    def test_pickle_roundtrip_is_compact_bytes(self):
        log, _ = build_log([(0, 0, "varith", 16)] * 100)
        payload = pickle.dumps(log)
        clone = pickle.loads(payload)
        assert clone.rows() == log.rows()
        # 6 int64 per row plus framing — far from 6 pickled Python ints/row
        assert len(payload) < 100 * 6 * 8 + 200


# --------------------------------------------------------------------------- #
# flat interval recording
# --------------------------------------------------------------------------- #
interval_list = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 100)), min_size=0, max_size=60
)


class TestFlatIntervalRecorder:
    def test_mirrors_fallback_recorder(self):
        flat = FlatIntervalRecorder("FU1")
        legacy = IntervalRecorder("FU1")
        for start, end in ((0, 10), (5, 15), (20, 25), (7, 7)):
            flat.record(start, end)
            legacy.record(start, end)
        assert flat.intervals == legacy.intervals
        assert flat.merged() == legacy.merged()
        assert flat.busy_cycles() == legacy.busy_cycles() == 20
        assert flat.busy_cycles(horizon=12) == legacy.busy_cycles(horizon=12)

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            FlatIntervalRecorder("x").record(10, 5)

    def test_reset_and_memo_invalidation(self):
        recorder = FlatIntervalRecorder("x")
        recorder.record(0, 10)
        assert recorder.merged() == [(0, 10)]
        recorder.record(20, 30)  # must invalidate the memoized merge
        assert recorder.merged() == [(0, 10), (20, 30)]
        recorder.drop_merge_memo()  # keeps intervals, drops only the memo
        assert recorder.merged() == [(0, 10), (20, 30)]
        recorder.reset()
        assert recorder.merged() == []
        assert recorder.busy_cycles() == 0

    def test_pickle_ships_flat_buffer(self):
        recorder = FlatIntervalRecorder("LD")
        for index in range(50):
            recorder.record(index * 10, index * 10 + 5)
        clone = pickle.loads(pickle.dumps(recorder))
        assert clone.name == "LD"
        assert clone.intervals == recorder.intervals

    @settings(max_examples=60, deadline=None)
    @given(
        spans=interval_list,
        horizon=st.one_of(st.none(), st.integers(min_value=0, max_value=600)),
    )
    def test_merge_identical_across_paths_and_recorders(self, spans, horizon):
        flat = FlatIntervalRecorder("u")
        legacy = IntervalRecorder("u")
        for start, length in spans:
            flat.record(start, start + length)
            legacy.record(start, start + length)

        with_numpy, without_numpy = both_paths(lambda: flat.merged(horizon))
        assert with_numpy == without_numpy == legacy.merged(horizon)
        assert flat.busy_cycles(horizon) == legacy.busy_cycles(horizon)

    def test_merge_interval_pairs_empty(self):
        from array import array

        assert merge_interval_pairs(array("q"), None) == []


# --------------------------------------------------------------------------- #
# the figure-4 sweep: numpy vs pure-Python
# --------------------------------------------------------------------------- #
class TestBreakdownPaths:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 2), st.integers(0, 300), st.integers(1, 80)
            ),
            min_size=0,
            max_size=60,
        ),
        total=st.integers(min_value=1, max_value=500),
    )
    def test_sweep_identical_across_paths(self, data, total):
        def breakdown_once():
            recorders = [
                FlatIntervalRecorder("FU2"),
                FlatIntervalRecorder("FU1"),
                FlatIntervalRecorder("LD"),
            ]
            for unit, start, length in data:
                recorders[unit].record(start, start + length)
            return fu_state_breakdown(*recorders, total)

        with_numpy, without_numpy = both_paths(breakdown_once)
        assert with_numpy == without_numpy
        assert sum(with_numpy.values()) == total
        assert all(value >= 0 for value in with_numpy.values())
        assert list(with_numpy) == list(FU_STATE_NAMES)


# --------------------------------------------------------------------------- #
# memory-layer columnar recording
# --------------------------------------------------------------------------- #
class TestMemoryLayerColumnar:
    def test_bus_stats_reduced_from_windows(self):
        bus = Bus("address")
        assert bus.stats.busy_cycles == 0
        bus.reserve(0, 10)
        bus.reserve(5, 5)
        assert bus.busy_windows == [(0, 10), (10, 15)]
        stats = bus.stats
        assert stats.busy_cycles == 15
        assert stats.transactions == 2
        assert stats.last_busy_cycle == 14
        bus.reset()
        assert bus.stats.busy_cycles == 0

    def test_memory_stats_reduced_from_transaction_log(self):
        memory = MemorySystem(latency=10)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=8), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_STORE, elements=4), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.SCALAR_LOAD, elements=1), earliest=0)
        stats = memory.stats
        assert stats.vector_loads == 1
        assert stats.vector_stores == 1
        assert stats.scalar_loads == 1
        assert stats.elements_loaded == 9
        assert stats.elements_stored == 4
        assert stats.total_transactions == 3
        memory.reset()
        assert memory.stats.total_transactions == 0

    def test_schedule_columnar_matches_schedule(self):
        from repro.memory.system import _KIND_CODE

        plain = MemorySystem(latency=30)
        columnar = MemorySystem(latency=30)
        request = MemoryRequest(AccessKind.VECTOR_LOAD, elements=16, stride=2)
        timing = plain.schedule(request, earliest=5)
        fast = columnar.schedule_columnar(
            _KIND_CODE[AccessKind.VECTOR_LOAD], 16, 2, 5
        )
        assert fast == (timing.start, timing.first_element, timing.completion)
        assert plain.stats == columnar.stats
        assert plain.address_port_busy_cycles == columnar.address_port_busy_cycles


# --------------------------------------------------------------------------- #
# environment plumbing
# --------------------------------------------------------------------------- #
class TestNumpyGate:
    def test_toggle_roundtrip(self):
        initial = numpy_enabled()
        previous = set_numpy_enabled(False)
        assert previous == initial
        assert not numpy_enabled()
        set_numpy_enabled(previous)
        assert numpy_enabled() == initial

    def test_fallback_fixture(self, fallback_mode):
        assert not numpy_enabled()
