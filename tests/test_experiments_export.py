"""Tests for CSV/JSON export of experiment reports."""

from __future__ import annotations

import csv
import json

import pytest

from repro.cli import main
from repro.experiments.export import (
    report_to_csv,
    report_to_json,
    write_report,
    write_reports,
)
from repro.experiments.figures import table1, table2


class TestExportFormats:
    def test_csv_roundtrip(self):
        report = table1()
        rows = list(csv.DictReader(report_to_csv(report).splitlines()))
        assert len(rows) == len(report.rows)
        assert set(rows[0]) == set(report.columns)
        assert rows[0]["parameter"] == report.rows[0]["parameter"]

    def test_json_roundtrip(self):
        report = table2()
        document = json.loads(report_to_json(report))
        assert document["experiment_id"] == "table2"
        assert document["columns"] == report.columns
        assert len(document["rows"]) == len(report.rows)

    def test_write_report_creates_files(self, tmp_path):
        path = write_report(table1(), tmp_path / "out", fmt="json")
        assert path.exists()
        assert path.name == "table1.json"
        assert json.loads(path.read_text())["title"].startswith("Table 1")

    def test_write_reports_multiple(self, tmp_path):
        paths = write_reports([table1(), table2()], tmp_path, fmt="csv")
        assert [path.name for path in paths] == ["table1.csv", "table2.csv"]
        assert all(path.exists() for path in paths)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(table1(), tmp_path, fmt="xml")


class TestCliExport:
    def test_cli_writes_output_files(self, tmp_path, capsys):
        exit_code = main(
            ["table1", "table2", "--output-dir", str(tmp_path), "--output-format", "json"]
        )
        assert exit_code == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table2.json").exists()
        assert "written to" in capsys.readouterr().out
