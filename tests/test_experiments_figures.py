"""Tests for the per-table/per-figure regeneration functions."""

from __future__ import annotations

import pytest

from repro.core.statistics import FU_STATE_NAMES
from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    figure4,
    figure5,
    figure9,
    run_experiment,
    table1,
    table2,
    table3,
)
from repro.experiments.report import render_report, render_timeline
from repro.experiments.runner import ExperimentContext, ExperimentSettings


@pytest.fixture(scope="module")
def context():
    settings = ExperimentSettings(
        scale=0.05,
        reference_latencies=(1, 70),
        sweep_latencies=(1, 100),
        crossbar_latencies=(50,),
        context_counts=(2,),
        grouping_programs=("swm256", "dyfesm"),
        max_groups_per_size=1,
    )
    return ExperimentContext(settings)


class TestExperimentRegistry:
    def test_every_paper_experiment_is_registered(self):
        expected = {
            "table1", "table2", "table3",
            "figure4", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10", "figure11", "figure12",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")


class TestTables:
    def test_table1_contains_crossbar_and_startup(self):
        report = table1()
        parameters = report.column_values("parameter")
        assert "read crossbar" in parameters
        assert "vector startup" in parameters
        assert report.experiment_id == "table1"

    def test_table2_matches_grouping_table(self):
        report = table2()
        assert report.column_values("2 threads")[0] == "hydro2d"
        assert len(report.rows) == 5

    def test_table3_contains_all_programs_with_paper_columns(self, context):
        # NOTE: this context uses an extremely small scale (0.05) where the
        # minimum-size floor distorts the scalar/vector ratio of the smallest
        # programs; the strict fidelity check lives in test_workloads_suite.
        report = table3(context)
        assert len(report.rows) == 10
        for row in report.rows:
            assert row["vectorization_pct"] == pytest.approx(
                row["paper_vectorization_pct"], abs=8.0
            )
            assert row["average_vl"] == pytest.approx(row["paper_average_vl"], rel=0.2)


class TestReferenceFigures:
    def test_figure4_rows_partition_execution_time(self, context):
        report = figure4(context)
        assert len(report.rows) == 10 * len(context.settings.reference_latencies)
        for row in report.rows:
            state_total = sum(row[state] for state in FU_STATE_NAMES)
            assert state_total == row["total_cycles"]

    def test_figure4_execution_time_grows_with_latency(self, context):
        report = figure4(context)
        by_program: dict[str, dict[int, int]] = {}
        for row in report.rows:
            by_program.setdefault(row["program"], {})[row["memory_latency"]] = row[
                "total_cycles"
            ]
        for cycles_by_latency in by_program.values():
            assert cycles_by_latency[70] >= cycles_by_latency[1]

    def test_figure5_idle_percentages_in_range(self, context):
        report = figure5(context)
        for row in report.rows:
            assert 0.0 <= row["memory_port_idle_pct"] <= 100.0
        # at latency 70 a substantial fraction of cycles has an idle port
        high_latency = [r for r in report.rows if r["memory_latency"] == 70]
        assert all(row["memory_port_idle_pct"] >= 15.0 for row in high_latency)


class TestMultithreadedFigures:
    def test_figures_6_7_8_share_the_same_runs(self, context):
        first = context.grouping_results()
        second = context.grouping_results()
        assert first is second

    def test_figure6_speedups_above_one(self, context):
        report = run_experiment("figure6", context)
        for row in report.rows:
            assert row["speedup_2_threads"] > 1.0

    def test_figure7_multithreaded_occupancy_beats_reference(self, context):
        report = run_experiment("figure7", context)
        for row in report.rows:
            assert row["mth_2_threads"] > row["ref_2_threads"]

    def test_figure8_vopc_improves(self, context):
        report = run_experiment("figure8", context)
        for row in report.rows:
            assert row["mth_2_threads"] > row["ref_2_threads"]


class TestFixedWorkloadFigures:
    def test_figure9_timeline_covers_all_programs(self, context):
        report = figure9(context)
        assert len(report.rows) == 10
        assert {row["thread"] for row in report.rows} <= {0, 1}
        rendered = render_timeline(report)
        assert "thread 0" in rendered

    def test_figure10_series_and_notes(self, context):
        report = run_experiment("figure10", context)
        assert "baseline" in report.columns
        assert "IDEAL" in report.columns
        for row in report.rows:
            assert row["baseline"] >= row["2 threads"] >= row["IDEAL"]

    def test_figure11_slowdowns_are_small(self, context):
        report = run_experiment("figure11", context)
        for row in report.rows:
            assert row["2_threads"] < 1.05

    def test_figure12_dual_scalar_column_present(self, context):
        report = run_experiment("figure12", context)
        assert "dual scalar" in report.columns
        for row in report.rows:
            assert row["dual scalar"] > 0


class TestReportRendering:
    def test_render_report_contains_columns_and_notes(self):
        report = table1()
        text = render_report(report)
        assert report.title in text
        assert "parameter" in text
        assert "Note:" in text

    def test_render_report_truncation(self, context):
        report = table3(context)
        text = render_report(report, max_rows=3)
        assert "more rows" in text

    def test_render_timeline_falls_back_for_other_reports(self):
        report = table2()
        assert render_timeline(report) == render_report(report)
