"""Tests for the fixed-workload methodology and latency sweeps (section 7)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.fixed_workload import FixedWorkload
from repro.experiments.latency_sweep import LatencySweep, SweepSeries
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def workload():
    return FixedWorkload(build_suite(scale=0.05))


class TestFixedWorkload:
    def test_missing_programs_rejected(self, tiny_suite):
        with pytest.raises(ExperimentError):
            FixedWorkload({"swm256": tiny_suite["swm256"]})

    def test_baseline_runs_all_programs_sequentially(self, workload):
        run = workload.run_baseline(50)
        assert run.machine == "baseline"
        assert len(run.timeline) == 10
        # sequential: each program starts when the previous one ends
        for previous, current in zip(run.timeline, run.timeline[1:]):
            assert current.start_cycle == previous.end_cycle
        assert run.cycles == run.timeline[-1].end_cycle

    def test_multithreaded_run_preserves_total_work(self, workload):
        run = workload.run_multithreaded(2, 50)
        assert run.num_contexts == 2
        executed = sorted(entry.program for entry in run.timeline)
        assert executed == sorted(workload.order)

    def test_multithreaded_is_faster_than_baseline(self, workload):
        baseline = workload.run_baseline(50)
        threaded = workload.run_multithreaded(2, 50)
        assert threaded.cycles < baseline.cycles
        assert threaded.memory_port_occupancy > baseline.memory_port_occupancy

    def test_timeline_threads_within_bounds(self, workload):
        run = workload.run_multithreaded(3, 50)
        assert {entry.thread_id for entry in run.timeline} <= {0, 1, 2}
        for entry in run.timeline:
            assert entry.duration >= 0

    def test_dual_scalar_run(self, workload):
        run = workload.run_dual_scalar(50)
        assert run.machine == "dual-scalar"
        assert len(run.timeline) == 10

    def test_ideal_cycles_is_a_lower_bound(self, workload):
        bound = workload.ideal_cycles()
        assert bound < workload.run_multithreaded(4, 1).cycles


class TestSweepSeries:
    def test_add_and_query(self):
        series = SweepSeries("x")
        series.add(1, 100)
        series.add(50, 120)
        assert series.cycles_at(50) == 120
        assert series.latencies == [1, 50]
        with pytest.raises(ExperimentError):
            series.cycles_at(70)

    def test_degradation(self):
        series = SweepSeries("x")
        series.add(1, 100)
        series.add(100, 150)
        assert series.degradation() == pytest.approx(0.5)
        assert SweepSeries("y").degradation() == 0.0


class TestLatencySweep:
    @pytest.fixture(scope="class")
    def sweep(self, workload):
        return LatencySweep(workload)

    def test_baseline_series_grows_with_latency(self, sweep):
        series = sweep.baseline_series((1, 100))
        assert series.cycles_at(100) > series.cycles_at(1)

    def test_multithreaded_series_flatter_than_baseline(self, sweep):
        baseline = sweep.baseline_series((1, 100))
        threaded = sweep.multithreaded_series(2, (1, 100))
        assert threaded.degradation() < baseline.degradation()

    def test_ideal_series_is_flat(self, sweep):
        series = sweep.ideal_series((1, 50, 100))
        values = {series.cycles_at(latency) for latency in (1, 50, 100)}
        assert len(values) == 1

    def test_crossbar_slowdowns_are_small(self, sweep):
        slowdowns = sweep.crossbar_slowdowns(2, (50,))
        assert 0.99 <= slowdowns[50] <= 1.05

    def test_dual_scalar_series(self, sweep):
        series = sweep.dual_scalar_series((1,))
        assert series.cycles_at(1) > 0
