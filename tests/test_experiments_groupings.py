"""Tests for the Table 2 grouping plan."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.experiments.groupings import (
    DEFAULT_GROUPING_TABLE,
    GroupingTable,
    all_programs,
    grouping_plan,
)


class TestGroupingTable:
    def test_default_table_sizes_match_paper(self):
        """Table 2: five 2-thread companions, two 3-thread, one 4-thread."""
        table = DEFAULT_GROUPING_TABLE
        assert len(table.two_thread_companions) == 5
        assert len(table.three_thread_companions) == 2
        assert len(table.four_thread_companions) == 1

    def test_companion_counts(self):
        table = DEFAULT_GROUPING_TABLE
        assert len(table.companions_for(2)) == 5
        assert len(table.companions_for(3)) == 10
        assert len(table.companions_for(4)) == 10

    def test_invalid_context_count(self):
        with pytest.raises(ExperimentError):
            DEFAULT_GROUPING_TABLE.companions_for(5)

    def test_unknown_program_rejected(self):
        with pytest.raises(WorkloadError):
            GroupingTable(("swm256",), ("not-a-program",), ("arc2d",))

    def test_as_rows(self):
        rows = DEFAULT_GROUPING_TABLE.as_rows()
        assert len(rows) == 5
        assert rows[0]["2 threads"] == "hydro2d"
        assert rows[3]["3 threads"] == ""


class TestGroupingPlan:
    def test_program_is_always_on_context_zero(self):
        plan = grouping_plan("trfd")
        for groups in plan.values():
            for group in groups:
                assert group[0] == "trfd"

    def test_group_sizes(self):
        plan = grouping_plan("swm256")
        assert all(len(group) == 2 for group in plan[2])
        assert all(len(group) == 3 for group in plan[3])
        assert all(len(group) == 4 for group in plan[4])

    def test_full_plan_has_25_groups(self):
        """5 + 10 + 10 groups per program, as described in section 4.1."""
        plan = grouping_plan("hydro2d")
        assert sum(len(groups) for groups in plan.values()) == 25

    def test_max_groups_truncation(self):
        plan = grouping_plan("hydro2d", max_groups_per_size=2)
        assert all(len(groups) == 2 for groups in plan.values())

    def test_unknown_program(self):
        with pytest.raises(WorkloadError):
            grouping_plan("not-a-benchmark")

    def test_all_programs(self):
        assert len(all_programs()) == 10
