"""Tests for the section 4.1 speedup methodology."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.multithreaded import MultithreadedSimulator
from repro.core.reference import ReferenceSimulator
from repro.core.suppliers import Job
from repro.errors import ExperimentError
from repro.experiments.metrics import ReferenceBank, SpeedupBreakdown, compute_speedup


@pytest.fixture()
def bank(tiny_suite):
    jobs = {name: Job.from_program(program) for name, program in tiny_suite.items()}
    return ReferenceBank(jobs, ReferenceSimulator(MachineConfig.reference(50)))


class TestReferenceBank:
    def test_full_results_are_cached(self, bank):
        first = bank.full_result("swm256")
        second = bank.full_result("swm256")
        assert first is second
        assert bank.full_cycles("swm256") == first.cycles

    def test_partial_cycles_monotone_in_instructions(self, bank):
        quarter = bank.partial_cycles("flo52", 50)
        half = bank.partial_cycles("flo52", 100)
        full = bank.full_cycles("flo52")
        assert 0 < quarter <= half <= full

    def test_partial_zero_instructions(self, bank):
        assert bank.partial_cycles("flo52", 0) == 0

    def test_unknown_program(self, bank):
        with pytest.raises(ExperimentError):
            bank.full_cycles("unknown-program")

    def test_sequential_metrics(self, bank):
        cycles, occupancy, vopc = bank.sequential_metrics(["swm256", "flo52"])
        assert cycles == bank.full_cycles("swm256") + bank.full_cycles("flo52")
        assert 0 < occupancy <= 1
        assert vopc > 0


class TestSpeedupComputation:
    def test_speedup_breakdown_formula(self):
        breakdown = SpeedupBreakdown(
            multithreaded_cycles=100,
            completed_work_cycles=90,
            partial_work_cycles=40,
        )
        assert breakdown.reference_work_cycles == 130
        assert breakdown.speedup == pytest.approx(1.3)

    def test_zero_cycles_is_safe(self):
        assert SpeedupBreakdown(0, 0, 0).speedup == 0.0

    def test_group_speedup_exceeds_one(self, tiny_suite, bank):
        """A 2-context group must beat running the same work sequentially."""
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_group([tiny_suite["swm256"], tiny_suite["tomcatv"]])
        breakdown = compute_speedup(result, bank)
        assert breakdown.speedup > 1.0
        assert breakdown.completed_runs  # thread 0 completed at least once
        assert breakdown.multithreaded_cycles == result.cycles

    def test_speedup_accounts_for_partial_work(self, tiny_suite, bank):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_group([tiny_suite["swm256"], tiny_suite["tomcatv"]])
        breakdown = compute_speedup(result, bank)
        # the companion thread was cut off mid-run, so either partial work was
        # recorded or the companion completed an exact number of runs
        companion_jobs = result.stats.thread(1).jobs
        has_incomplete = any(not job.completed and job.instructions > 0 for job in companion_jobs)
        assert has_incomplete == (breakdown.partial_work_cycles > 0)

    def test_empty_jobs_are_ignored(self, bank, tiny_suite):
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_group([tiny_suite["flo52"], tiny_suite["swm256"]])
        breakdown = compute_speedup(result, bank)
        for program, instructions, cycles in breakdown.partial_runs:
            assert instructions > 0
            assert cycles > 0
