"""Tests for the groupings experiment (figures 6-8 machinery)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.groupings import GroupingTable
from repro.experiments.multiprogram import (
    GroupRunMetrics,
    GroupingExperiment,
    GroupingExperimentResult,
)
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def experiment():
    programs = build_suite(scale=0.05)
    table = GroupingTable(("swm256", "tomcatv"), ("flo52",), ("dyfesm",))
    return GroupingExperiment(
        programs,
        memory_latency=50,
        table=table,
        max_groups_per_size=1,
        context_counts=(2, 3),
    )


class TestGroupingExperiment:
    def test_missing_companions_rejected(self, tiny_suite):
        programs = {"swm256": tiny_suite["swm256"]}
        with pytest.raises(ExperimentError):
            GroupingExperiment(programs)

    def test_run_group_metrics(self, experiment):
        metrics = experiment.run_group(("trfd", "swm256"))
        assert isinstance(metrics, GroupRunMetrics)
        assert metrics.num_contexts == 2
        assert metrics.speedup > 1.0
        assert 0 < metrics.reference_occupancy < metrics.multithreaded_occupancy <= 1.0
        assert metrics.multithreaded_vopc > metrics.reference_vopc

    def test_run_program_covers_requested_context_counts(self, experiment):
        metrics = experiment.run_program("dyfesm")
        counts = {m.num_contexts for m in metrics}
        assert counts == {2, 3}
        assert len(metrics) == 2  # one group per context count (max_groups=1)

    def test_run_produces_averagable_result(self, experiment):
        result = experiment.run(["trfd"])
        assert isinstance(result, GroupingExperimentResult)
        assert result.programs() == ["trfd"]
        assert result.context_counts() == [2, 3]
        assert result.average_speedup("trfd", 2) > 1.0
        mth, ref = result.average_occupancy("trfd", 2)
        assert mth > ref


class TestGroupingExperimentResult:
    def test_missing_data_raises(self):
        result = GroupingExperimentResult(memory_latency=50)
        with pytest.raises(ExperimentError):
            result.average_speedup("swm256", 2)

    def test_add_and_average(self):
        result = GroupingExperimentResult(memory_latency=50)
        for speedup in (1.2, 1.4):
            result.add(
                "swm256",
                GroupRunMetrics(
                    group=("swm256", "flo52"),
                    num_contexts=2,
                    multithreaded_cycles=1000,
                    speedup=speedup,
                    multithreaded_occupancy=0.8,
                    reference_occupancy=0.6,
                    multithreaded_vopc=0.9,
                    reference_vopc=0.5,
                ),
            )
        assert result.average_speedup("swm256", 2) == pytest.approx(1.3)
        assert result.average_vopc("swm256", 2) == (pytest.approx(0.9), pytest.approx(0.5))
