"""Tests for the deterministic fault-injection subsystem."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CORRUPT_BYTES,
    FAULT_KINDS,
    PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_fault_plan,
    inject_conn_reset,
    inject_slow_execute,
    inject_store_corrupt,
    load_fault_plan,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec("cosmic_ray")

    @pytest.mark.parametrize(
        "field, value",
        [("count", 0), ("skip", -1), ("delay", -0.1)],
    )
    def test_rejects_bad_numbers(self, field, value):
        with pytest.raises(ConfigurationError):
            FaultSpec("worker_crash", **{field: value})

    def test_every_kind_is_accepted(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind).kind == kind


class TestFiringWindow:
    def test_skip_then_count_then_quiet(self):
        plan = FaultPlan([FaultSpec("worker_crash", count=2, skip=1)])
        fired = [plan.should_fire("worker_crash") for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_unplanned_kind_never_fires(self):
        plan = FaultPlan([FaultSpec("worker_crash")])
        assert not any(plan.should_fire("conn_reset") for _ in range(10))

    def test_deterministic_across_identical_plans(self):
        first_plan = FaultPlan([FaultSpec("conn_reset", count=3, skip=2)])
        second_plan = FaultPlan([FaultSpec("conn_reset", count=3, skip=2)])
        first = [first_plan.should_fire("conn_reset") for _ in range(8)]
        second = [second_plan.should_fire("conn_reset") for _ in range(8)]
        assert first == second
        assert first.count(True) == 3

    def test_state_dir_shares_budget_across_instances(self, tmp_path):
        # two plan instances stand in for two processes: only one of them
        # wins each cross-process ticket, so exactly `count` events fire
        # in total, not per instance
        a = FaultPlan([FaultSpec("worker_crash", count=1)], state_dir=tmp_path)
        b = FaultPlan([FaultSpec("worker_crash", count=1)], state_dir=tmp_path)
        fired = [a.should_fire("worker_crash"), b.should_fire("worker_crash")]
        assert fired == [True, False]
        assert (tmp_path / "worker_crash.tick0").exists()

    def test_state_dir_stops_ticketing_past_window(self, tmp_path):
        plan = FaultPlan([FaultSpec("slow_execute", count=1)], state_dir=tmp_path)
        for _ in range(5):
            plan.should_fire("slow_execute")
        # only the window's tickets exist; later events claim no marker
        assert sorted(p.name for p in tmp_path.iterdir()) == ["slow_execute.tick0"]


class TestPlanDocuments:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec("worker_crash", count=2, skip=1), FaultSpec("slow_execute", delay=0.2)],
            state_dir=tmp_path,
        )
        clone = FaultPlan.from_document(plan.to_document())
        assert clone.to_document() == plan.to_document()
        assert clone.spec("slow_execute").delay == 0.2

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultPlan([FaultSpec("conn_reset"), FaultSpec("conn_reset")])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan field"):
            FaultPlan.from_document({"fault": {}})
        with pytest.raises(ConfigurationError, match="unknown field"):
            FaultPlan.from_document({"faults": {"conn_reset": {"chance": 0.5}}})

    def test_load_inline_json(self):
        plan = load_fault_plan('{"faults": {"conn_reset": {"count": 2}}}')
        assert plan.spec("conn_reset").count == 2

    def test_load_bad_json(self):
        with pytest.raises(ConfigurationError, match="bad inline fault plan"):
            load_fault_plan("{nope")

    def test_load_toml_file(self, tmp_path):
        path = tmp_path / "chaos.toml"
        path.write_text(
            '[faults.worker_crash]\ncount = 1\n\n[faults.slow_execute]\ndelay = 0.01\n'
        )
        plan = load_fault_plan(f"@{path}")
        assert plan.spec("worker_crash").count == 1
        assert plan.spec("slow_execute").delay == 0.01

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({"faults": {"store_corrupt": {}}}))
        assert load_fault_plan(f"@{path}").spec("store_corrupt") is not None

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read fault plan"):
            load_fault_plan(f"@{tmp_path / 'absent.toml'}")


class TestActivePlan:
    def test_default_is_none(self):
        assert active_plan() is None

    def test_set_installs_env_for_workers(self):
        set_fault_plan(FaultPlan([FaultSpec("conn_reset")]))
        assert PLAN_ENV in os.environ
        # a fresh process would load the same plan from the env payload
        reloaded = load_fault_plan(os.environ[PLAN_ENV])
        assert reloaded.spec("conn_reset") is not None

    def test_env_is_loaded_once(self, tmp_path):
        clear_fault_plan()
        os.environ[PLAN_ENV] = json.dumps(
            {"faults": {"slow_execute": {"delay": 0.0}}}
        )
        try:
            assert active_plan().spec("slow_execute") is not None
        finally:
            clear_fault_plan()

    def test_clear_disables_injection(self):
        set_fault_plan(FaultPlan([FaultSpec("conn_reset")]))
        clear_fault_plan()
        assert PLAN_ENV not in os.environ
        inject_conn_reset()  # no plan: must not raise


class TestInjectors:
    def test_conn_reset_fires_then_stops(self):
        set_fault_plan(FaultPlan([FaultSpec("conn_reset", count=1)]), install_env=False)
        with pytest.raises(ConnectionResetError):
            inject_conn_reset()
        inject_conn_reset()  # budget exhausted

    def test_slow_execute_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr("time.sleep", lambda s: naps.append(s))
        set_fault_plan(
            FaultPlan([FaultSpec("slow_execute", count=1, delay=0.123)]),
            install_env=False,
        )
        inject_slow_execute()
        inject_slow_execute()
        assert naps == [0.123]

    def test_store_corrupt_scribbles_over_file(self, tmp_path):
        victim = tmp_path / "entry.res"
        victim.write_bytes(b"x" * 64)
        set_fault_plan(FaultPlan([FaultSpec("store_corrupt", count=1)]), install_env=False)
        inject_store_corrupt(victim)
        assert victim.read_bytes().startswith(CORRUPT_BYTES)
        before = victim.read_bytes()
        inject_store_corrupt(victim)  # budget exhausted: untouched
        assert victim.read_bytes() == before

    def test_store_corrupt_tolerates_missing_file(self, tmp_path):
        set_fault_plan(FaultPlan([FaultSpec("store_corrupt", count=1)]), install_env=False)
        inject_store_corrupt(tmp_path / "absent.res")  # must not raise
