"""Golden-trace differential tests: per-dispatch replay against frozen logs.

The statistics-level equivalence suite proves end-of-run totals match the
seed oracle; this suite catches *mid-run* divergence that totals can mask.
Each committed JSON under ``tests/golden/`` holds the per-dispatch rows of
one deterministic run generated from the frozen seed oracle; replaying the
same case through the optimized engine — on the columnar scoreboard and on
the object fallback — must reproduce every row byte-identically: same
dispatch cycle, thread, pc, opcode, vector length, completion cycle and
per-dispatch counters, in the same order.
"""

from __future__ import annotations

import pytest

from repro.core.scoreboard import set_columnar_scoreboard_enabled

from tests.golden_corpus import (
    CASES,
    GOLDEN_DIR,
    TRACE_FIELDS,
    load_golden,
    run_fast_case,
)

CASE_NAMES = sorted(CASES)


@pytest.fixture(params=["columnar", "object"])
def scoreboard_backend(request):
    """Run every replay on both scoreboard backends."""
    previous = set_columnar_scoreboard_enabled(request.param == "columnar")
    try:
        yield request.param
    finally:
        set_columnar_scoreboard_enabled(previous)


def _assert_rows_identical(case: str, golden_rows: list, replay_rows: list) -> None:
    assert len(replay_rows) == len(golden_rows), (
        f"{case}: dispatched {len(replay_rows)} instructions, "
        f"golden trace has {len(golden_rows)}"
    )
    for index, (golden, replay) in enumerate(zip(golden_rows, replay_rows)):
        if replay != golden:
            labeled_golden = dict(zip(TRACE_FIELDS, golden))
            labeled_replay = dict(zip(TRACE_FIELDS, replay))
            raise AssertionError(
                f"{case}: first divergence at dispatch #{index}:\n"
                f"  golden: {labeled_golden}\n"
                f"  replay: {labeled_replay}"
            )


class TestGoldenTraceCorpus:
    def test_corpus_is_complete(self):
        """Every defined case has a committed golden file, and vice versa."""
        committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
        assert committed == set(CASE_NAMES), (
            "corpus drift: regenerate with "
            "`PYTHONPATH=src:. python tests/golden/generate.py` "
            "and review the diff"
        )

    @pytest.mark.parametrize("case", CASE_NAMES)
    def test_replay_matches_golden_trace(self, case, scoreboard_backend):
        document = load_golden(case)
        assert document["fields"] == list(TRACE_FIELDS), (
            f"{case}: golden file schema drift — regenerate the corpus"
        )
        _assert_rows_identical(case, document["rows"], run_fast_case(case))
