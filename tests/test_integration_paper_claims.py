"""Integration tests that check the paper's headline claims end to end.

These run the actual experiment pipeline (synthetic suite → cycle-level
simulation → section 4.1 metrics) at a reduced scale and assert the *shape*
of the published results:

* multithreading yields speedups of roughly 1.2–1.5 with very few threads
  (abstract, section 6.1);
* 2 threads push the single memory port to ~80–90 % occupancy and 3 threads
  to ~90 %+ (abstract, section 6.2);
* the multithreaded machine tolerates memory latency far better than the
  reference machine (section 7, figure 10);
* a 3-cycle register-file crossbar costs well under 1 % (section 8, fig. 11);
* the Fujitsu-style dual-scalar machine is slightly ahead at low latency and
  converges with the 2-context machine at high latency (section 9, fig. 12).
"""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.multithreaded import MultithreadedSimulator
from repro.core.reference import ReferenceSimulator
from repro.core.suppliers import Job
from repro.experiments.fixed_workload import FixedWorkload
from repro.experiments.latency_sweep import LatencySweep
from repro.experiments.metrics import ReferenceBank, compute_speedup
from repro.workloads import build_suite

SCALE = 0.15


@pytest.fixture(scope="module")
def suite():
    return build_suite(scale=SCALE)


@pytest.fixture(scope="module")
def reference_bank(suite):
    jobs = {name: Job.from_program(program) for name, program in suite.items()}
    return ReferenceBank(jobs, ReferenceSimulator(MachineConfig.reference(50)))


@pytest.fixture(scope="module")
def fixed_workload(suite):
    return FixedWorkload(suite)


GROUPS_2 = [
    ("swm256", "tomcatv"),
    ("hydro2d", "bdna"),
    ("dyfesm", "swm256"),
    ("trfd", "hydro2d"),
]
GROUPS_3 = [
    ("swm256", "tomcatv", "flo52"),
    ("dyfesm", "hydro2d", "nasa7"),
]


class TestSpeedupClaims:
    @pytest.mark.parametrize("group", GROUPS_2, ids=["+".join(g) for g in GROUPS_2])
    def test_two_context_speedup_in_paper_range(self, suite, reference_bank, group):
        """2 contexts give speedups around 1.2-1.5 at latency 50 (figure 6)."""
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_group([suite[name] for name in group])
        speedup = compute_speedup(result, reference_bank).speedup
        assert 1.1 <= speedup <= 1.75

    @pytest.mark.parametrize("group", GROUPS_3, ids=["+".join(g) for g in GROUPS_3])
    def test_three_contexts_improve_on_two(self, suite, reference_bank, group):
        """Going from 2 to 3 contexts keeps improving throughput (figure 6)."""
        two = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_group(
            [suite[name] for name in group[:2]]
        )
        three = MultithreadedSimulator(MachineConfig.multithreaded(3, 50)).run_group(
            [suite[name] for name in group]
        )
        speedup_two = compute_speedup(two, reference_bank).speedup
        speedup_three = compute_speedup(three, reference_bank).speedup
        assert speedup_three >= speedup_two - 0.05
        assert speedup_three > 1.2


class TestMemoryPortClaims:
    def test_reference_machine_leaves_the_port_heavily_idle(self, suite):
        """Section 5: the reference machine leaves 30-65%% of cycles with an idle port."""
        simulator = ReferenceSimulator(MachineConfig.reference(70))
        idle_fractions = []
        for name in ("swm256", "hydro2d", "flo52", "nasa7", "dyfesm"):
            result = simulator.run(suite[name])
            idle_fractions.append(result.memory_port_idle_fraction)
        assert all(0.2 <= idle <= 0.8 for idle in idle_fractions)

    def test_two_threads_reach_high_port_occupancy(self, suite):
        """Section 6.2: with 2 threads the port reaches ~80-90%% occupancy."""
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(2, 50))
        result = simulator.run_group([suite["swm256"], suite["hydro2d"]])
        assert result.memory_port_occupancy >= 0.75

    def test_three_threads_approach_saturation(self, suite):
        """Abstract / section 6.2: 3+ threads drive the port to ~90-95%%."""
        simulator = MultithreadedSimulator(MachineConfig.multithreaded(3, 50))
        result = simulator.run_group([suite["swm256"], suite["hydro2d"], suite["flo52"]])
        assert result.memory_port_occupancy >= 0.88

    def test_vopc_improves_with_multithreading(self, suite):
        """Section 6.3: VOPC rises well above the reference machine's value."""
        baseline = ReferenceSimulator(MachineConfig.reference(50)).run(suite["swm256"])
        threaded = MultithreadedSimulator(MachineConfig.multithreaded(3, 50)).run_group(
            [suite["swm256"], suite["hydro2d"], suite["arc2d"]]
        )
        assert threaded.vopc > 1.2 * baseline.vopc


class TestLatencyToleranceClaims:
    def test_multithreading_flattens_the_latency_curve(self, fixed_workload):
        """Figure 10: the 2-context machine degrades far less than the baseline."""
        sweep = LatencySweep(fixed_workload)
        baseline = sweep.baseline_series((1, 100))
        threaded = sweep.multithreaded_series(2, (1, 100))
        assert baseline.degradation() > 0.2
        assert threaded.degradation() < 0.6 * baseline.degradation()

    def test_speedup_grows_with_latency(self, fixed_workload):
        """Figure 10: the multithreaded advantage grows from ~1.15 at latency 1
        towards ~1.45 at latency 100."""
        sweep = LatencySweep(fixed_workload)
        baseline = sweep.baseline_series((1, 100))
        threaded = sweep.multithreaded_series(2, (1, 100))
        speedup_low = baseline.cycles_at(1) / threaded.cycles_at(1)
        speedup_high = baseline.cycles_at(100) / threaded.cycles_at(100)
        assert speedup_low > 1.05  # benefit exists even with an ideal memory
        assert speedup_high > speedup_low
        assert speedup_high > 1.3

    def test_ideal_bound_below_all_machines(self, fixed_workload):
        sweep = LatencySweep(fixed_workload)
        ideal = fixed_workload.ideal_cycles()
        assert ideal <= fixed_workload.run_multithreaded(4, 1).cycles
        assert ideal <= fixed_workload.run_baseline(1).cycles


class TestCrossbarClaims:
    def test_three_cycle_crossbar_costs_less_than_two_percent(self, fixed_workload):
        """Figure 11: the slowdown from the larger crossbar stays tiny (<1%% in the paper)."""
        sweep = LatencySweep(fixed_workload)
        slowdowns = sweep.crossbar_slowdowns(2, (50,))
        assert slowdowns[50] < 1.02


class TestDualScalarClaims:
    def test_dual_scalar_advantage_shrinks_with_latency(self, fixed_workload):
        """Figure 12: the Fujitsu-style machine leads slightly at low latency and
        converges with 2-context multithreading at latency 100."""
        low_fuj = fixed_workload.run_dual_scalar(1).cycles
        low_mth = fixed_workload.run_multithreaded(2, 1).cycles
        high_fuj = fixed_workload.run_dual_scalar(100).cycles
        high_mth = fixed_workload.run_multithreaded(2, 100).cycles
        low_gap = (low_mth - low_fuj) / low_mth
        high_gap = (high_mth - high_fuj) / high_mth
        assert low_fuj <= low_mth  # dual scalar ahead (or equal) at low latency
        assert abs(high_gap) <= abs(low_gap) + 0.01  # convergence at high latency

    def test_more_contexts_beat_the_dual_scalar_machine(self, fixed_workload):
        """Figure 12: 3- and 4-context multithreading outperform both 2-way schemes."""
        fujitsu = fixed_workload.run_dual_scalar(50).cycles
        three = fixed_workload.run_multithreaded(3, 50).cycles
        assert three < fujitsu
