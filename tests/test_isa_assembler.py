"""Unit and property-based tests for the textual assembler."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.isa.assembler import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.builder import scalar_op, vadd, vload, vstore
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        instruction = vadd(V(2), V(0), V(1), vl=128)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    def test_memory_roundtrip(self):
        instruction = vload(V(3), vl=64, address=0x1000, stride=8)
        decoded = decode_instruction(encode_instruction(instruction))
        assert decoded == instruction
        assert decoded.address == 0x1000
        assert decoded.stride == 8

    def test_store_roundtrip(self):
        instruction = vstore(V(1), A(2), vl=32, address=0x2000)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    def test_immediate_roundtrip(self):
        instruction = scalar_op(Opcode.ADD_A, A(1), A(1), imm=8)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    def test_pc_roundtrip(self):
        instruction = vadd(V(2), V(0), V(1), vl=16).with_pc(42)
        assert decode_instruction(encode_instruction(instruction)).pc == 42

    def test_decode_with_comment(self):
        assert decode_instruction("nop ; trailing comment").opcode is Opcode.NOP

    def test_decode_errors(self):
        with pytest.raises(AssemblyError):
            decode_instruction("")
        with pytest.raises(AssemblyError):
            decode_instruction("bogus v0, v1")
        with pytest.raises(AssemblyError):
            decode_instruction("vadd v0, q1, v2 !vl=4")
        with pytest.raises(AssemblyError):
            decode_instruction("vadd v0, v1, v2 !vl=4 !wat=1")
        with pytest.raises(AssemblyError):
            decode_instruction("vstore v0, a0")  # missing vl for vector op

    def test_program_roundtrip(self):
        instructions = [
            vload(V(0), vl=64, address=0x100),
            vadd(V(2), V(0), V(1), vl=64),
            vstore(V(2), A(0), vl=64, address=0x200),
            Instruction(Opcode.BR_COND, srcs=(S(1),)),
        ]
        text = encode_program(instructions)
        assert decode_program(text) == instructions

    def test_decode_program_skips_comments_and_blanks(self):
        text = "# header\n\nnop\n; pure comment\nnop\n"
        assert len(decode_program(text)) == 2


vector_regs = st.integers(min_value=0, max_value=7).map(V)
lengths = st.integers(min_value=1, max_value=128)


class TestAssemblerProperties:
    @given(dest=vector_regs, a=vector_regs, b=vector_regs, vl=lengths)
    def test_vadd_roundtrip_property(self, dest, a, b, vl):
        instruction = vadd(dest, a, b, vl=vl)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    @given(
        dest=vector_regs,
        vl=lengths,
        address=st.integers(min_value=0, max_value=2**40),
        stride=st.integers(min_value=1, max_value=4096),
    )
    def test_vload_roundtrip_property(self, dest, vl, address, stride):
        instruction = vload(dest, vl=vl, address=address, stride=stride)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    @given(index=st.integers(min_value=0, max_value=7), imm=st.integers(-1000, 1000))
    def test_scalar_roundtrip_property(self, index, imm):
        instruction = scalar_op(Opcode.ADD_S, S(index), S((index + 1) % 8), imm=imm)
        assert decode_instruction(encode_instruction(instruction)) == instruction
