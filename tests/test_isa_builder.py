"""Unit tests for the instruction builder helpers."""

from __future__ import annotations

from repro.isa import builder
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V


class TestVectorBuilders:
    def test_vload(self):
        instruction = builder.vload(V(0), vl=64, address=0x100, stride=2)
        assert instruction.opcode is Opcode.VLOAD
        assert instruction.dest == V(0)
        assert instruction.vl == 64
        assert instruction.stride == 2

    def test_vstore_sources(self):
        instruction = builder.vstore(V(1), A(3), vl=32, address=0x40)
        assert instruction.opcode is Opcode.VSTORE
        assert instruction.dest is None
        assert instruction.srcs == (V(1), A(3))

    def test_gather_and_scatter(self):
        gather = builder.vgather(V(2), V(0), vl=16, address=0x1000)
        scatter = builder.vscatter(V(2), V(0), A(1), vl=16, address=0x1000)
        assert gather.is_load and gather.is_vector_memory
        assert scatter.is_store and scatter.is_vector_memory
        assert V(0) in gather.vector_sources()

    def test_arithmetic_builders(self):
        assert builder.vadd(V(2), V(0), V(1), vl=8).opcode is Opcode.VADD
        assert builder.vsub(V(2), V(0), V(1), vl=8).opcode is Opcode.VSUB
        assert builder.vmul(V(2), V(0), V(1), vl=8).opcode is Opcode.VMUL
        assert builder.vdiv(V(2), V(0), V(1), vl=8).opcode is Opcode.VDIV
        assert builder.vsqrt(V(2), V(0), vl=8).opcode is Opcode.VSQRT
        assert builder.vmov(V(2), V(0), vl=8).opcode is Opcode.VMOV

    def test_vreduce_writes_scalar(self):
        instruction = builder.vreduce(S(3), V(0), vl=64)
        assert instruction.dest == S(3)
        assert instruction.is_vector_arithmetic

    def test_vlogic_default_and_custom(self):
        assert builder.vlogic(V(3), V(0), V(1), vl=4).opcode is Opcode.VAND
        assert builder.vlogic(V(3), V(0), V(1), vl=4, opcode=Opcode.VOR).opcode is Opcode.VOR

    def test_vsetvl_vsetvs(self):
        from repro.isa.registers import VL, VS

        assert builder.vsetvl(VL, 128).imm == 128
        assert builder.vsetvs(VS, 8).imm == 8


class TestScalarBuilders:
    def test_scalar_op(self):
        instruction = builder.scalar_op(Opcode.MUL_S, S(0), S(1), S(2))
        assert instruction.srcs == (S(1), S(2))

    def test_scalar_load_store(self):
        load = builder.scalar_load(S(0), address=0x10)
        store = builder.scalar_store(S(0), A(1), address=0x10)
        assert load.is_load and load.is_memory and load.is_scalar
        assert store.is_store and store.dest is None

    def test_branch(self):
        assert builder.branch().opcode is Opcode.BR
        conditional = builder.branch(S(1))
        assert conditional.opcode is Opcode.BR_COND
        assert conditional.srcs == (S(1),)

    def test_nop(self):
        assert builder.nop().opcode is Opcode.NOP
