"""Unit tests for the dynamic instruction record."""

from __future__ import annotations

import pytest

from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import A, S, V


def vadd(vl=64):
    return Instruction(Opcode.VADD, dest=V(2), srcs=(V(0), V(1)), vl=vl)


class TestInstructionValidation:
    def test_vector_instruction_requires_vl(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.VADD, dest=V(2), srcs=(V(0), V(1)))

    def test_vector_length_bounds(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.VADD, dest=V(2), srcs=(V(0), V(1)), vl=0)
        with pytest.raises(IsaError):
            Instruction(Opcode.VADD, dest=V(2), srcs=(V(0), V(1)), vl=129)
        assert vadd(vl=128).vl == 128
        assert vadd(vl=1).vl == 1

    def test_dest_required_when_declared(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.VLOAD, vl=64)
        with pytest.raises(IsaError):
            Instruction(Opcode.VSTORE, dest=V(0), srcs=(V(1), A(0)), vl=64)

    def test_negative_address_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.VLOAD, dest=V(0), vl=64, address=-8)

    def test_control_instruction_needs_no_vl(self):
        instruction = Instruction(Opcode.VSETVL, dest=V(0), imm=64)
        assert instruction.vl is None


class TestInstructionClassification:
    def test_vector_arithmetic(self):
        instruction = vadd()
        assert instruction.is_vector
        assert instruction.is_vector_arithmetic
        assert not instruction.is_vector_memory
        assert not instruction.is_memory

    def test_vector_memory(self):
        load = Instruction(Opcode.VLOAD, dest=V(0), vl=64, address=0x100)
        assert load.is_vector_memory
        assert load.is_memory
        assert load.is_load
        assert not load.is_store

    def test_scalar(self):
        instruction = Instruction(Opcode.ADD_S, dest=S(1), srcs=(S(1), S(2)))
        assert instruction.is_scalar
        assert not instruction.is_vector

    def test_branch(self):
        assert Instruction(Opcode.BR_COND, srcs=(S(1),)).is_branch


class TestInstructionCosts:
    def test_element_count(self):
        assert vadd(vl=77).element_count == 77
        assert Instruction(Opcode.ADD_S, dest=S(0), srcs=(S(1),)).element_count == 1

    def test_memory_transactions(self):
        load = Instruction(Opcode.VLOAD, dest=V(0), vl=100, address=0)
        assert load.memory_transactions == 100
        scalar_load = Instruction(Opcode.LD_S, dest=S(0), address=0)
        assert scalar_load.memory_transactions == 1
        assert vadd().memory_transactions == 0

    def test_vector_operations_counts_only_arithmetic(self):
        assert vadd(vl=50).vector_operations == 50
        load = Instruction(Opcode.VLOAD, dest=V(0), vl=50, address=0)
        assert load.vector_operations == 0

    def test_reads_and_writes(self):
        instruction = vadd()
        assert instruction.reads() == (V(0), V(1))
        assert instruction.writes() == (V(2),)
        store = Instruction(Opcode.VSTORE, srcs=(V(3), A(1)), vl=8, address=0)
        assert store.writes() == ()
        assert V(3) in store.vector_sources()
        assert A(1) in store.scalar_sources()

    def test_vector_registers_touched(self):
        instruction = vadd()
        assert set(instruction.vector_registers_touched()) == {V(0), V(1), V(2)}


class TestInstructionCopies:
    def test_with_vl(self):
        assert vadd(vl=64).with_vl(32).vl == 32

    def test_with_pc_and_address(self):
        load = Instruction(Opcode.VLOAD, dest=V(0), vl=8, address=0x40)
        assert load.with_pc(12).pc == 12
        assert load.with_address(0x80).address == 0x80

    def test_str_contains_operands(self):
        text = str(vadd())
        assert "vadd" in text
        assert "v2" in text and "v0" in text and "v1" in text
        assert "vl=64" in text
