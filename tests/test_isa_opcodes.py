"""Unit tests for opcode classification and functional-unit routing."""

from __future__ import annotations

import pytest

from repro.isa.opcodes import (
    ExecutionResource,
    FU2_ONLY_CLASSES,
    OPCODE_INFO,
    OpClass,
    Opcode,
)


class TestOpcodeClassification:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO
            assert opcode.info.mnemonic == opcode.value

    def test_vector_opcodes_flagged(self):
        assert Opcode.VADD.is_vector
        assert Opcode.VLOAD.is_vector
        assert Opcode.VSETVL.is_vector
        assert not Opcode.ADD_S.is_vector
        assert not Opcode.LD_S.is_vector

    def test_memory_opcodes_flagged(self):
        for opcode in (Opcode.VLOAD, Opcode.VSTORE, Opcode.VGATHER, Opcode.VSCATTER,
                       Opcode.LD_S, Opcode.ST_S, Opcode.LD_A, Opcode.ST_A):
            assert opcode.is_memory
        for opcode in (Opcode.VADD, Opcode.ADD_S, Opcode.BR, Opcode.NOP):
            assert not opcode.is_memory

    def test_load_store_split(self):
        assert OpClass.VECTOR_LOAD.is_load and not OpClass.VECTOR_LOAD.is_store
        assert OpClass.VECTOR_STORE.is_store and not OpClass.VECTOR_STORE.is_load
        assert OpClass.VECTOR_GATHER.is_load
        assert OpClass.VECTOR_SCATTER.is_store
        assert OpClass.SCALAR_LOAD.is_load
        assert OpClass.SCALAR_STORE.is_store

    def test_fu2_only_routing(self):
        """Multiply, divide and square root may only execute on FU2 (section 3)."""
        assert Opcode.VMUL.fu2_only
        assert Opcode.VDIV.fu2_only
        assert Opcode.VSQRT.fu2_only
        assert not Opcode.VADD.fu2_only
        assert not Opcode.VAND.fu2_only
        assert not Opcode.VREDUCE.fu2_only
        assert {OpClass.VECTOR_MUL, OpClass.VECTOR_DIV, OpClass.VECTOR_SQRT} == set(
            FU2_ONLY_CLASSES
        )

    def test_execution_resources(self):
        assert Opcode.VADD.op_class.resource is ExecutionResource.VECTOR_ARITHMETIC
        assert Opcode.VLOAD.op_class.resource is ExecutionResource.VECTOR_MEMORY
        assert Opcode.ADD_S.op_class.resource is ExecutionResource.SCALAR_UNIT
        assert Opcode.LD_S.op_class.resource is ExecutionResource.SCALAR_UNIT
        assert Opcode.VSETVL.op_class.resource is ExecutionResource.CONTROL
        assert Opcode.NOP.op_class.resource is ExecutionResource.CONTROL

    def test_latency_classes_are_known(self):
        valid = {"alu", "logic", "mul", "div", "sqrt", "move", "branch", "memory"}
        for opcode in Opcode:
            assert opcode.latency_class in valid

    def test_from_mnemonic(self):
        assert Opcode.from_mnemonic("vadd") is Opcode.VADD
        assert Opcode.from_mnemonic("  LD.S ") is Opcode.LD_S
        with pytest.raises(KeyError):
            Opcode.from_mnemonic("frobnicate")

    def test_source_counts_sane(self):
        assert Opcode.VADD.info.num_sources == 2
        assert Opcode.VMERGE.info.num_sources == 3
        assert Opcode.NOP.info.num_sources == 0

    def test_dest_flags(self):
        assert Opcode.VLOAD.info.has_dest
        assert not Opcode.VSTORE.info.has_dest
        assert not Opcode.BR.info.has_dest
        assert not Opcode.VSCATTER.info.has_dest
