"""Unit tests for the architectural register model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.registers import (
    MAX_VECTOR_LENGTH,
    NUM_ADDRESS_REGISTERS,
    NUM_SCALAR_REGISTERS,
    NUM_VECTOR_BANKS,
    NUM_VECTOR_REGISTERS,
    REGISTERS_PER_BANK,
    Register,
    RegisterClass,
    A,
    S,
    V,
    VL,
    VS,
    all_registers,
    vector_bank_of,
)


class TestRegisterClass:
    def test_scalar_classes(self):
        assert RegisterClass.ADDRESS.is_scalar_class
        assert RegisterClass.SCALAR.is_scalar_class
        assert not RegisterClass.VECTOR.is_scalar_class

    def test_control_classes(self):
        assert RegisterClass.VECTOR_LENGTH.is_control_class
        assert RegisterClass.VECTOR_STRIDE.is_control_class
        assert not RegisterClass.VECTOR.is_control_class

    def test_file_sizes(self):
        assert RegisterClass.ADDRESS.file_size == NUM_ADDRESS_REGISTERS == 8
        assert RegisterClass.SCALAR.file_size == NUM_SCALAR_REGISTERS == 8
        assert RegisterClass.VECTOR.file_size == NUM_VECTOR_REGISTERS == 8
        assert RegisterClass.VECTOR_LENGTH.file_size == 1

    def test_architecture_constants_match_paper(self):
        # 8 vector registers of 128 elements (section 3), grouped in pairs.
        assert NUM_VECTOR_REGISTERS == 8
        assert MAX_VECTOR_LENGTH == 128
        assert REGISTERS_PER_BANK == 2
        assert NUM_VECTOR_BANKS == 4


class TestRegister:
    def test_names(self):
        assert A(0).name == "a0"
        assert S(7).name == "s7"
        assert V(3).name == "v3"
        assert VL.name == "vl"
        assert VS.name == "vs"

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IsaError):
            Register(RegisterClass.VECTOR, 8)
        with pytest.raises(IsaError):
            Register(RegisterClass.SCALAR, -1)

    def test_is_vector(self):
        assert V(0).is_vector
        assert not A(0).is_vector
        assert not VL.is_vector

    def test_bank_assignment(self):
        assert V(0).bank == 0
        assert V(1).bank == 0
        assert V(2).bank == 1
        assert V(7).bank == 3
        assert A(3).bank is None

    def test_vector_bank_of_rejects_scalars(self):
        with pytest.raises(IsaError):
            vector_bank_of(S(0))
        assert vector_bank_of(V(5)) == 2

    def test_parse_roundtrip(self):
        for register in all_registers():
            assert Register.parse(register.name) == register

    def test_parse_rejects_garbage(self):
        for bad in ("x0", "v", "a9", "vz", ""):
            with pytest.raises(IsaError):
                Register.parse(bad)

    def test_hashable_and_ordered(self):
        registers = {V(0), V(0), V(1)}
        assert len(registers) == 2
        assert sorted([V(1), V(0)]) == [V(0), V(1)]

    def test_all_registers_count(self):
        # 8 A + 8 S + 8 V + VL + VS
        assert len(all_registers()) == 26

    @given(st.integers(min_value=0, max_value=7))
    def test_parse_any_valid_vector_register(self, index):
        assert Register.parse(f"v{index}") == V(index)
