"""Unit tests for the memory subsystem: busses, banks and the memory system."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.memory.banks import BankConflictModel
from repro.memory.bus import Bus
from repro.memory.request import AccessKind, MemoryRequest, MemoryTiming
from repro.memory.system import MemorySystem


class TestBus:
    def test_serial_reservations(self):
        bus = Bus("address")
        first = bus.reserve(0, 10)
        second = bus.reserve(0, 5)
        assert first == 0
        assert second == 10
        assert bus.stats.busy_cycles == 15
        assert bus.free_at == 15

    def test_reservation_respects_earliest(self):
        bus = Bus("address")
        assert bus.reserve(100, 4) == 100
        assert bus.reserve(10, 4) == 104

    def test_zero_length_reservation(self):
        bus = Bus("address")
        assert bus.reserve(5, 0) == 5
        assert bus.stats.busy_cycles == 0

    def test_invalid_reservations(self):
        bus = Bus("address")
        with pytest.raises(SimulationError):
            bus.reserve(-1, 4)
        with pytest.raises(SimulationError):
            bus.reserve(0, -4)

    def test_occupancy(self):
        bus = Bus("address")
        bus.reserve(0, 50)
        assert bus.stats.occupancy(100) == pytest.approx(0.5)
        assert bus.stats.occupancy(25) == 1.0
        assert bus.stats.occupancy(0) == 0.0

    def test_reset(self):
        bus = Bus("address")
        bus.reserve(0, 10)
        bus.reset()
        assert bus.free_at == 0
        assert bus.stats.busy_cycles == 0

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=30)
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_cycles_equal_sum_of_reservations(self, lengths):
        bus = Bus("address")
        for length in lengths:
            bus.reserve(0, length)
        assert bus.stats.busy_cycles == sum(lengths)
        assert bus.free_at == sum(lengths)


class TestMemoryRequest:
    def test_access_kind_flags(self):
        assert AccessKind.VECTOR_LOAD.is_load and AccessKind.VECTOR_LOAD.is_vector
        assert AccessKind.VECTOR_SCATTER.is_indexed and not AccessKind.VECTOR_SCATTER.is_load
        assert AccessKind.SCALAR_STORE.is_vector is False

    def test_address_cycles(self):
        request = MemoryRequest(AccessKind.VECTOR_LOAD, elements=77)
        assert request.address_cycles == 77

    def test_rejects_empty_request(self):
        with pytest.raises(ValueError):
            MemoryRequest(AccessKind.VECTOR_LOAD, elements=0)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            MemoryTiming(start=0, address_busy=1, first_element=10, completion=5)


class TestBankConflictModel:
    def test_unit_stride_has_no_conflicts(self):
        model = BankConflictModel(num_banks=64, bank_busy_cycles=4)
        request = MemoryRequest(AccessKind.VECTOR_LOAD, elements=128, stride=1)
        assert model.delivery_cycles(request) == 128
        assert model.stats.conflict_rate == 0.0

    def test_pathological_stride_serializes(self):
        model = BankConflictModel(num_banks=64, bank_busy_cycles=4)
        request = MemoryRequest(AccessKind.VECTOR_LOAD, elements=64, stride=64)
        assert model.effective_banks(64) == 1
        assert model.delivery_cycles(request) == 64 * 4
        assert model.stats.conflicted_accesses == 1

    def test_moderate_stride(self):
        model = BankConflictModel(num_banks=64, bank_busy_cycles=4)
        assert model.effective_banks(32) == 2
        request = MemoryRequest(AccessKind.VECTOR_LOAD, elements=64, stride=32)
        assert model.delivery_cycles(request) == 128

    def test_scalar_accesses_never_conflict(self):
        model = BankConflictModel()
        request = MemoryRequest(AccessKind.SCALAR_LOAD, elements=1)
        assert model.slowdown(request) == 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            BankConflictModel(num_banks=0)
        with pytest.raises(ConfigurationError):
            BankConflictModel(bank_busy_cycles=0)
        with pytest.raises(ConfigurationError):
            BankConflictModel(gather_conflict_factor=2.0)


class TestMemorySystem:
    def test_vector_load_timing(self):
        memory = MemorySystem(latency=50)
        timing = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=64), earliest=10)
        assert timing.start == 10
        assert timing.address_busy == 64
        assert timing.first_element == 10 + 50 + 1
        assert timing.completion == timing.first_element + 63

    def test_vector_store_pays_no_latency(self):
        """Stores send data and never wait for the write to complete (section 3.1)."""
        memory = MemorySystem(latency=50)
        timing = memory.schedule(MemoryRequest(AccessKind.VECTOR_STORE, elements=64), earliest=10)
        assert timing.first_element == timing.start == 10
        assert timing.completion == 10 + 63

    def test_address_bus_is_shared_by_all_transactions(self):
        """Scalar and vector transactions contend for the single address bus."""
        memory = MemorySystem(latency=10)
        first = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=32), earliest=0)
        second = memory.schedule(MemoryRequest(AccessKind.SCALAR_LOAD, elements=1), earliest=0)
        assert first.start == 0
        assert second.start == 32
        assert memory.address_port_busy_cycles == 33

    def test_gather_behaves_like_a_load(self):
        """Gathers pay the initial latency and then one datum per cycle (section 3.1)."""
        memory = MemorySystem(latency=30)
        load = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=16), earliest=0)
        memory.reset()
        gather = memory.schedule(MemoryRequest(AccessKind.VECTOR_GATHER, elements=16), earliest=0)
        assert gather.first_element == load.first_element
        assert gather.completion == load.completion

    def test_zero_latency_memory(self):
        memory = MemorySystem(latency=0)
        timing = memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=8), earliest=0)
        assert timing.first_element == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MemorySystem(latency=-1)

    def test_transaction_counters(self):
        memory = MemorySystem(latency=5)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=8), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_STORE, elements=8), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_GATHER, elements=8), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_SCATTER, elements=8), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.SCALAR_LOAD, elements=1), earliest=0)
        memory.schedule(MemoryRequest(AccessKind.SCALAR_STORE, elements=1), earliest=0)
        stats = memory.stats
        assert stats.total_transactions == 6
        assert stats.vector_loads == stats.vector_stores == 1
        assert stats.gathers == stats.scatters == 1
        assert stats.elements_loaded == 17
        assert stats.elements_stored == 17

    def test_port_occupancy_metric(self):
        memory = MemorySystem(latency=5)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=50), earliest=0)
        assert memory.port_occupancy(100) == pytest.approx(0.5)

    def test_bank_model_slows_delivery_but_not_address_bus(self):
        model = BankConflictModel(num_banks=8, bank_busy_cycles=4)
        memory = MemorySystem(latency=10, bank_model=model)
        timing = memory.schedule(
            MemoryRequest(AccessKind.VECTOR_LOAD, elements=32, stride=8), earliest=0
        )
        assert timing.address_busy == 32
        assert timing.completion - timing.first_element + 1 == 32 * 4

    def test_reset_clears_everything(self):
        memory = MemorySystem(latency=5)
        memory.schedule(MemoryRequest(AccessKind.VECTOR_LOAD, elements=8), earliest=0)
        memory.reset()
        assert memory.address_port_busy_cycles == 0
        assert memory.stats.total_transactions == 0

    @given(
        elements=st.integers(min_value=1, max_value=128),
        latency=st.integers(min_value=0, max_value=200),
        earliest=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_load_timing_invariants(self, elements, latency, earliest):
        memory = MemorySystem(latency=latency)
        timing = memory.schedule(
            MemoryRequest(AccessKind.VECTOR_LOAD, elements=elements), earliest=earliest
        )
        assert timing.start >= earliest
        assert timing.first_element > timing.start
        assert timing.completion == timing.first_element + elements - 1
        assert timing.address_busy == elements
