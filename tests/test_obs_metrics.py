"""Tests for the metrics registry, Prometheus exposition and cross-shard
histogram aggregation (`repro.obs.metrics` / `repro.obs.exposition`)."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_snapshots,
    parse_exposition,
    render_families,
)


class TestCounter:
    def test_monotone_and_resettable(self):
        counter = Counter("repro_test_total", "A test counter")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value() == 0.0

    def test_labelled_series_are_independent(self):
        counter = Counter("repro_test_total", "A test counter", labelnames=("kind",))
        counter.inc(labels={"kind": "a"})
        counter.inc(3, labels={"kind": "b"})
        assert counter.value(labels={"kind": "a"}) == 1.0
        assert counter.value(labels={"kind": "b"}) == 3.0

    def test_label_mismatch_rejected(self):
        counter = Counter("repro_test_total", "A test counter", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(labels={"other": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_test_gauge", "A test gauge")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram(
            "repro_test_seconds", "A test histogram", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        doc = histogram.snapshot()
        [series] = doc["series"]
        assert series["buckets"] == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(5.55)
        assert doc["le"] == [0.1, 1.0]

    def test_default_buckets_are_exponential(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0005)
        ratios = [
            DEFAULT_LATENCY_BUCKETS[i + 1] / DEFAULT_LATENCY_BUCKETS[i]
            for i in range(len(DEFAULT_LATENCY_BUCKETS) - 1)
        ]
        assert all(ratio == pytest.approx(2.0) for ratio in ratios)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x")
        second = registry.counter("repro_x_total", "x")
        assert first is second

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            registry.histogram("repro_x_total", "x")


class TestExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs", labelnames=("kind",)).inc(
            2, labels={"kind": "fast"}
        )
        registry.gauge("repro_depth", "Queue depth").set(4)
        histogram = registry.histogram(
            "repro_wait_seconds", "Wait", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(2.0)
        return registry

    def test_render_has_help_type_and_cumulative_buckets(self):
        text = "\n".join(render_families(self._registry().snapshot()))
        assert "# HELP repro_wait_seconds Wait" in text
        assert "# TYPE repro_wait_seconds histogram" in text
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="1"} 2' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_wait_seconds_count 3" in text
        assert 'repro_jobs_total{kind="fast"} 2' in text

    def test_families_render_sorted_with_no_blank_lines(self):
        lines = render_families(self._registry().snapshot())
        assert all(line.strip() for line in lines)
        family_order = [
            line.split()[2] for line in lines if line.startswith("# HELP")
        ]
        assert family_order == sorted(family_order)

    def test_round_trip_through_parser(self):
        snapshot = self._registry().snapshot()
        parsed = parse_exposition("\n".join(render_families(snapshot)))
        assert parsed["repro_jobs_total"]["type"] == "counter"
        assert parsed["repro_depth"]["type"] == "gauge"
        histogram = parsed["repro_wait_seconds"]
        assert histogram["type"] == "histogram"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in histogram["samples"]
        }
        assert samples[("repro_wait_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("repro_wait_seconds_count", ())] == 3
        counter_samples = parsed["repro_jobs_total"]["samples"]
        assert ("repro_jobs_total", {"kind": "fast"}, 2.0) in counter_samples


class TestMerge:
    def _shard(self, observations: list[float], submitted: int) -> dict:
        registry = MetricsRegistry()
        registry.counter("repro_service_submitted_total", "Submitted").inc(submitted)
        histogram = registry.histogram("repro_execute_seconds", "Execute")
        for value in observations:
            histogram.observe(value)
        return registry.snapshot()

    def test_histograms_merge_by_bucket_summation(self):
        shard_a = self._shard([0.001, 0.002, 0.1], submitted=3)
        shard_b = self._shard([0.004, 2.0], submitted=2)
        merged = merge_metric_snapshots([shard_a, shard_b])

        assert merged["repro_service_submitted_total"]["series"][0]["value"] == 5
        [series] = merged["repro_execute_seconds"]["series"]
        per_shard = [
            doc["repro_execute_seconds"]["series"][0] for doc in (shard_a, shard_b)
        ]
        assert series["count"] == sum(entry["count"] for entry in per_shard)
        assert series["sum"] == pytest.approx(
            sum(entry["sum"] for entry in per_shard)
        )
        # exact bucket-wise sums — cluster percentiles stay exact
        for index in range(len(series["buckets"])):
            assert series["buckets"][index] == sum(
                entry["buckets"][index] for entry in per_shard
            )

    def test_merge_rejects_mismatched_buckets(self):
        registry_a = MetricsRegistry()
        registry_a.histogram("repro_x_seconds", "x", buckets=(0.1, 1.0)).observe(0.5)
        registry_b = MetricsRegistry()
        registry_b.histogram("repro_x_seconds", "x", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_metric_snapshots([registry_a.snapshot(), registry_b.snapshot()])

    def test_aggregate_stats_merges_shard_metrics(self):
        from repro.service.shard import aggregate_stats

        shard_a = {"submitted": 3, "metrics": self._shard([0.001], submitted=3)}
        shard_b = {"submitted": 2, "metrics": self._shard([0.002], submitted=2)}
        aggregate = aggregate_stats([shard_a, shard_b])
        merged = aggregate["metrics"]
        assert (
            merged["repro_service_submitted_total"]["series"][0]["value"] == 5
        )
        assert merged["repro_execute_seconds"]["series"][0]["count"] == 2


class TestServiceScrape:
    def test_live_scrape_parses_and_keeps_legacy_aliases(self):
        import urllib.request

        from repro.service import ServiceServer, SimulationService

        service = SimulationService(workers=1, paused=True)
        try:
            with ServiceServer(service, port=0) as server:
                with urllib.request.urlopen(server.url + "/metrics") as answer:
                    text = answer.read().decode()
        finally:
            service.shutdown()
        parsed = parse_exposition(text)
        assert parsed["repro_service_submitted_total"]["type"] == "counter"
        assert parsed["repro_queue_wait_seconds"]["type"] == "histogram"
        # deprecated flat aliases stay scrapeable for one release
        assert "repro_submitted_total" in parsed
        assert "repro_store_hit_rate" in parsed
