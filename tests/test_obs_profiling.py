"""Tests for opt-in engine phase profiling (`repro.obs.profiling`): the
gate, the per-phase accounting, and the off-path's byte-identical stats."""

from __future__ import annotations

import pickle

import pytest

from repro.api import Machine
from repro.obs import (
    PROFILE_ENV_VAR,
    PROFILE_PHASES,
    PhaseProfile,
    force_profiling,
    profiling_enabled,
)
from repro.workloads import build_benchmark

SCALE = 0.05


def _workload():
    return build_benchmark("tomcatv", scale=SCALE)


class TestGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert profiling_enabled() is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_truthiness(self, monkeypatch, value, expected):
        monkeypatch.setenv(PROFILE_ENV_VAR, value)
        assert profiling_enabled() is expected

    def test_force_overrides_env_both_ways(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "0")
        with force_profiling(True):
            assert profiling_enabled() is True
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        with force_profiling(False):
            assert profiling_enabled() is False
        assert profiling_enabled() is True


class TestPhaseProfile:
    def test_wrap_accounts_calls_and_seconds(self):
        profile = PhaseProfile()
        wrapped = profile.wrap("dispatch", lambda x: x + 1)
        assert wrapped(1) == 2
        assert wrapped(2) == 3
        assert profile.calls["dispatch"] == 2
        assert profile.seconds["dispatch"] >= 0.0

    def test_as_dict_derives_decode_residual(self):
        profile = PhaseProfile()
        profile.loop_seconds = 1.0
        profile.add("hazard_check", 0.25, calls=10)
        profile.add("dispatch", 0.35, calls=10)
        doc = profile.as_dict()
        assert doc["phases"]["decode"]["seconds"] == pytest.approx(0.4)
        assert doc["nested"] == {"memory": "dispatch"}

    def test_residual_clamped_at_zero(self):
        profile = PhaseProfile()
        profile.loop_seconds = 0.1
        profile.add("dispatch", 0.5)
        assert profile.as_dict()["phases"]["decode"]["seconds"] == 0.0


class TestEngineProfiling:
    def test_off_run_has_no_profile(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        result = Machine.named("reference").run(_workload())
        assert result.phase_profile is None

    def test_profiled_run_reports_every_phase(self):
        result = Machine.named("reference").run(_workload(), profile=True)
        profile = result.phase_profile
        assert profile is not None
        assert set(profile["phases"]) == set(PROFILE_PHASES)
        assert profile["loop_seconds"] > 0.0
        assert profile["phases"]["hazard_check"]["calls"] > 0
        assert profile["phases"]["dispatch"]["calls"] > 0
        assert profile["phases"]["finalize"]["calls"] == 1

    def test_env_var_profiles_plain_run(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        result = Machine.named("reference").run(_workload())
        assert result.phase_profile is not None

    def test_profiling_leaves_stats_byte_identical(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        plain = Machine.named("reference").run(_workload())
        profiled = Machine.named("reference").run(_workload(), profile=True)
        rerun = Machine.named("reference").run(_workload())
        assert pickle.dumps(plain.stats) == pickle.dumps(profiled.stats)
        assert pickle.dumps(plain.stats) == pickle.dumps(rerun.stats)
        assert plain.cycles == profiled.cycles

    def test_multithreaded_machine_profiles_too(self):
        result = Machine.named("multithreaded-2").run(_workload(), profile=True)
        assert result.phase_profile is not None
        assert set(result.phase_profile["phases"]) == set(PROFILE_PHASES)

    def test_wrappers_removed_after_profiled_run(self):
        machine = Machine.named("reference")
        machine.run(_workload(), profile=True)
        simulator = machine._backend._simulator
        engine = getattr(simulator, "_engine", None) or getattr(
            simulator, "engine", None
        )
        # the loop wrappers are instance attributes installed per profiled
        # run; none may survive into the next (unprofiled) run
        if engine is not None:
            assert "earliest_issue" not in vars(engine.dispatch_model)
            assert "execute" not in vars(engine.dispatch_model)
        unprofiled = machine.run(_workload())
        assert unprofiled.phase_profile is None

    def test_profile_bypasses_cache_both_ways(self):
        from repro.api.cache import RunCache

        machine = Machine.named("reference", cache=RunCache())
        warm = machine.run(_workload())  # fills the cache
        profiled = machine.run(_workload(), profile=True)
        assert profiled.phase_profile is not None
        cached = machine.run(_workload())
        assert cached.phase_profile is None
        assert warm.cycles == profiled.cycles == cached.cycles


class TestSweepProfileMetrics:
    def test_profile_metric_resolves_on_profiled_result(self):
        from repro.sweep.aggregate import metric_value

        result = Machine.named("reference").run(_workload(), profile=True)
        total = sum(
            metric_value(result, f"profile.{phase}") for phase in PROFILE_PHASES
        )
        assert total >= 0.0
        assert metric_value(result, "profile.loop_seconds") >= 0.0

    def test_profile_metric_raises_without_profile(self):
        from repro.errors import SweepError
        from repro.sweep.aggregate import metric_value

        result = Machine.named("reference").run(_workload())
        with pytest.raises(SweepError):
            metric_value(result, "profile.decode")
        with pytest.raises(SweepError):
            metric_value(result, "profile.no_such_phase")
