"""Tests for distributed tracing: the span log, the `X-Repro-Trace` header
propagation router → shard → pool worker, and the trace endpoint/CLI."""

from __future__ import annotations

import json
import os
import urllib.request

import pytest

from repro.api import SimulationRequest
from repro.obs import TRACE_HEADER, TraceLog, new_trace_id
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceServer,
    ShardRouterServer,
    SimulationService,
)
from repro.workloads import build_benchmark

SCALE = 0.05


class TestTraceLog:
    def test_spans_sorted_by_start(self):
        log = TraceLog()
        log.add_span("job", "execute", trace_id="t", start=2.0, duration=0.5)
        log.add_span("job", "submit", trace_id="t", start=1.0, duration=0.1)
        names = [span["span"] for span in log.spans("job")]
        assert names == ["submit", "execute"]

    def test_unknown_job_returns_none(self):
        assert TraceLog().spans("missing") is None

    def test_bounded_job_eviction(self):
        log = TraceLog(max_jobs=2)
        for index in range(3):
            log.add_span(f"job{index}", "submit", start=float(index), duration=0.0)
        assert log.spans("job0") is None
        assert log.spans("job2") is not None
        assert len(log) == 2

    def test_bounded_spans_per_job(self):
        log = TraceLog(max_spans_per_job=2)
        for index in range(5):
            log.add_span("job", "execute", start=float(index), duration=0.0)
        assert len(log.spans("job")) == 2

    def test_jsonl_round_trips(self):
        log = TraceLog()
        log.add_span("job", "submit", trace_id="t", start=1.0, duration=0.25, hit=True)
        [line] = log.to_jsonl("job").splitlines()
        span = json.loads(line)
        assert span["span"] == "submit"
        assert span["trace_id"] == "t"
        assert span["duration_ms"] == 250.0
        assert span["hit"] is True


@pytest.fixture()
def live_service(tmp_path):
    """One real service executing on a process pool, behind HTTP."""
    store = ResultStore(tmp_path / "store")
    service = SimulationService(store=store, workers=1)
    server = ServiceServer(service, port=0).start()
    try:
        yield server
    finally:
        server.stop()


def _request() -> SimulationRequest:
    return SimulationRequest.single(
        "reference", build_benchmark("tomcatv", scale=SCALE)
    )


class TestTracePropagation:
    def test_client_minted_id_reaches_pool_worker(self, live_service):
        client = ServiceClient(live_service.url)
        handle = client.submit_request(_request())
        assert handle.trace_id  # echoed by the 202 answer
        handle.wait(timeout=120.0)

        timeline = client.trace(handle.job_id)
        assert timeline["trace_id"] == handle.trace_id
        spans = {span["span"]: span for span in timeline["spans"]}
        for name in ("submit", "store-lookup", "queue-wait", "execute", "result-ship"):
            assert name in spans, f"missing span {name!r}"
        assert all(
            span["trace_id"] == handle.trace_id for span in timeline["spans"]
        )
        # the execute span proves cross-process propagation: the worker
        # echoed the id back from its own pid
        execute = spans["execute"]
        assert execute["worker_trace_id"] == handle.trace_id
        assert execute["worker_pid"] != os.getpid()

    def test_explicit_header_wins_over_minting(self, live_service):
        trace_id = new_trace_id()
        document = {
            "machine": "reference",
            "workloads": [{"benchmark": "tomcatv", "scale": SCALE}],
        }
        request = urllib.request.Request(
            live_service.url + "/jobs",
            data=json.dumps(document).encode(),
            headers={"Content-Type": "application/json", TRACE_HEADER: trace_id},
        )
        with urllib.request.urlopen(request) as answer:
            body = json.loads(answer.read())
        assert body["trace_id"] == trace_id

    def test_server_mints_id_when_header_absent(self, live_service):
        document = {
            "machine": "reference",
            "workloads": [{"benchmark": "tomcatv", "scale": SCALE}],
        }
        request = urllib.request.Request(
            live_service.url + "/jobs",
            data=json.dumps(document).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as answer:
            body = json.loads(answer.read())
        assert body["trace_id"]

    def test_propagates_through_router(self, live_service):
        with ShardRouterServer([live_service.url]) as router:
            client = ServiceClient(router.url)
            handle = client.submit(
                "reference", {"benchmark": "tomcatv", "scale": SCALE}
            )
            assert handle.trace_id
            handle.wait(timeout=120.0)
            timeline = client.trace(handle.job_id)
        assert timeline["trace_id"] == handle.trace_id
        names = [span["span"] for span in timeline["spans"]]
        assert "submit" in names and "execute" in names

    def test_fetch_span_recorded_on_result_download(self, live_service):
        client = ServiceClient(live_service.url)
        handle = client.submit_request(_request())
        handle.wait(timeout=120.0)
        timeline = client.trace(handle.job_id)
        names = [span["span"] for span in timeline["spans"]]
        assert "fetch" in names

    def test_store_hit_records_short_chain(self, live_service):
        client = ServiceClient(live_service.url)
        first = client.submit_request(_request())
        first.wait(timeout=120.0)
        second = client.submit_request(_request())
        assert second.served_from == "store"
        assert second.trace_id and second.trace_id != first.trace_id
        timeline = client.trace(second.job_id)
        spans = {span["span"]: span for span in timeline["spans"]}
        assert spans["store-lookup"]["hit"] is True
        assert "execute" not in spans

    def test_unknown_job_trace_404s(self, live_service):
        from repro.service import ServiceError

        client = ServiceClient(live_service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.trace("no-such-job")
        assert excinfo.value.status == 404


class TestTraceCli:
    def test_trace_main_pretty_prints(self, live_service, capsys):
        from repro.cli import trace_main

        client = ServiceClient(live_service.url)
        handle = client.submit_request(_request())
        handle.wait(timeout=120.0)
        assert trace_main([handle.job_id, "--url", live_service.url]) == 0
        output = capsys.readouterr().out
        assert handle.trace_id in output
        assert "execute" in output
        assert "ms" in output

    def test_trace_main_dead_server(self, capsys):
        from repro.cli import trace_main

        assert trace_main(["job", "--url", "http://127.0.0.1:9"]) == 2
        assert "service error:" in capsys.readouterr().err

    def test_main_routes_trace_subcommand(self, monkeypatch):
        import repro.cli as cli

        seen = {}
        monkeypatch.setattr(
            cli, "trace_main", lambda argv: seen.setdefault("trace", argv) and 0
        )
        assert cli.main(["trace", "some-job"]) == 0
        assert seen == {"trace": ["some-job"]}
