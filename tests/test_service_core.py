"""Tests for :class:`SimulationService` (in-process, no HTTP)."""

from __future__ import annotations

import pickle

import pytest

from repro.api import Machine, SimulationRequest
from repro.core.suppliers import Job
from repro.errors import ConfigurationError, SimulationError
from repro.service import JobState, ResultStore, SimulationService
from repro.workloads import build_benchmark

SCALE = 0.05


@pytest.fixture()
def service(tmp_path):
    with SimulationService(store=ResultStore(tmp_path), workers=2) as service:
        yield service


def _request(benchmark: str = "tomcatv", **options) -> SimulationRequest:
    return SimulationRequest.single(
        "reference", build_benchmark(benchmark, scale=SCALE), **options
    )


class TestSubmit:
    def test_submit_executes_and_returns_result(self, service):
        job = service.submit(_request())
        record = service.wait(job.job_id, timeout=120.0)
        assert record.state is JobState.DONE
        assert record.served_from == "executed"
        result = record.result()
        local = Machine.named("reference").run(build_benchmark("tomcatv", scale=SCALE))
        assert result.cycles == local.cycles
        assert pickle.dumps(result.stats) == pickle.dumps(local.stats)

    def test_second_submission_is_served_from_store(self, service):
        first = service.submit(_request())
        service.wait(first.job_id, timeout=120.0)
        second = service.submit(_request())
        assert second.state is JobState.DONE and second.served_from == "store"
        assert second.result().cycles == first.result().cycles
        assert service.stats()["store_hits"] == 1

    def test_store_survives_service_restart(self, tmp_path):
        with SimulationService(store=ResultStore(tmp_path), workers=1) as first:
            job = first.submit(_request())
            cycles = first.result(job.job_id, timeout=120.0).cycles
        with SimulationService(store=ResultStore(tmp_path), workers=1) as second:
            warm = second.submit(_request())
            assert warm.served_from == "store"
            assert warm.result().cycles == cycles
            assert second.stats()["executed"] == 0

    def test_rejects_non_request(self, service):
        with pytest.raises(ConfigurationError):
            service.submit("not a request")

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationService(workers=0)
        with pytest.raises(ConfigurationError):
            SimulationService(keep_jobs=0)

    def test_unpicklable_request_runs_on_local_pool(self, service):
        stream = list(build_benchmark("tomcatv", scale=SCALE).instructions())
        job = Job("closure-job", lambda: iter(stream))  # unpicklable supplier
        record = service.submit(SimulationRequest.single("reference", job))
        result = service.result(record.job_id, timeout=120.0)
        local = Machine.named("reference").run(build_benchmark("tomcatv", scale=SCALE))
        assert result.cycles == local.cycles


class TestCoalescing:
    def test_identical_inflight_submissions_execute_once(self, tmp_path):
        with SimulationService(
            store=ResultStore(tmp_path), workers=2, paused=True
        ) as service:
            jobs = [service.submit(_request()) for _ in range(3)]
            assert [job.served_from for job in jobs] == [
                "executed", "coalesced", "coalesced",
            ]
            service.resume()
            payloads = [
                service.wait(job.job_id, timeout=120.0).payload for job in jobs
            ]
            assert payloads[0] == payloads[1] == payloads[2]
            stats = service.stats()
            assert stats["executed"] == 1 and stats["coalesced"] == 2
            assert stats["submitted"] == 3

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        with SimulationService(
            store=ResultStore(tmp_path), workers=2, paused=True
        ) as service:
            one = service.submit(_request())
            other = service.submit(_request(memory_latency=90))
            assert other.served_from == "executed"
            service.resume()
            service.wait(one.job_id, timeout=120.0)
            service.wait(other.job_id, timeout=120.0)
            assert service.stats()["executed"] == 2

    def test_pause_and_resume_flags(self, service):
        assert not service.paused
        service.pause()
        assert service.paused
        service.resume()
        assert not service.paused


class TestFailure:
    def test_failed_execution_marks_all_waiters(self, tmp_path):
        with SimulationService(store=ResultStore(tmp_path), workers=1, paused=True) as service:
            # the first stream open (the submit-time content fingerprint)
            # succeeds; the execution-time re-open inside the worker raises
            stream = tuple(build_benchmark("tomcatv", scale=SCALE).instructions())
            opens = {"count": 0}

            def fragile_supplier():
                opens["count"] += 1
                if opens["count"] > 1:
                    raise SimulationError("exploding workload")
                return iter(stream)

            bad = SimulationRequest.single(
                "reference", Job("fragile", fragile_supplier), tag="bad"
            )
            jobs = [service.submit(bad), service.submit(bad)]
            assert jobs[1].served_from == "coalesced"
            service.resume()
            for job in jobs:
                record = service.wait(job.job_id, timeout=120.0)
                assert record.state is JobState.FAILED
                assert "exploding workload" in record.error
                with pytest.raises(SimulationError):
                    record.result()
            stats = service.stats()
            assert stats["failed"] == 2 and stats["executed"] == 0
            assert len(service.store) == 0

    def test_wait_unknown_job(self, service):
        with pytest.raises(SimulationError):
            service.wait("no-such-job", timeout=0.1)

    def test_wait_timeout(self, tmp_path):
        with SimulationService(store=ResultStore(tmp_path), paused=True) as service:
            job = service.submit(_request())
            with pytest.raises(SimulationError):
                service.wait(job.job_id, timeout=0.05)

    def test_submit_after_shutdown_rejected(self, tmp_path):
        service = SimulationService(store=ResultStore(tmp_path), workers=1)
        service.shutdown()
        with pytest.raises(SimulationError):
            service.submit(_request())
        service.shutdown()  # idempotent


class TestHousekeeping:
    def test_keep_jobs_bound_drops_finished_records(self, tmp_path):
        with SimulationService(
            store=ResultStore(tmp_path), workers=1, keep_jobs=2
        ) as service:
            first = service.submit(_request())
            service.wait(first.job_id, timeout=120.0)
            for _ in range(3):  # store hits: completed immediately
                last = service.submit(_request())
            assert service.job(first.job_id) is None  # evicted
            assert service.job(last.job_id) is not None
            assert service.stats()["jobs_tracked"] <= 2

    def test_stats_shape(self, service):
        job = service.submit(_request())
        service.wait(job.job_id, timeout=120.0)
        stats = service.stats()
        for field in (
            "submitted", "executed", "coalesced", "store_hits", "failed",
            "pending", "running", "workers", "paused", "jobs_tracked",
            "jobs_by_state", "uptime_seconds", "store",
        ):
            assert field in stats, field
        assert stats["jobs_by_state"] == {"done": 1}
        assert stats["store"]["entries"] == 1

    def test_drain_blocks_until_idle(self, service):
        jobs = [service.submit(_request(memory_latency=20 + index)) for index in range(3)]
        service.drain(timeout=120.0)
        for job in jobs:
            assert service.job(job.job_id).finished

    def test_priority_orders_paused_backlog(self, tmp_path):
        with SimulationService(
            store=ResultStore(tmp_path), workers=1, paused=True
        ) as service:
            low = service.submit(_request(memory_latency=31), priority=0)
            high = service.submit(_request(memory_latency=32), priority=9)
            service.resume()
            service.drain(timeout=120.0)
            low_record = service.job(low.job_id)
            high_record = service.job(high.job_id)
            assert high_record.finished_at <= low_record.finished_at


class TestDrainTimeout:
    def test_drain_times_out_while_paused(self, tmp_path):
        with SimulationService(
            store=ResultStore(tmp_path), workers=1, paused=True
        ) as service:
            service.submit(_request())
            with pytest.raises(SimulationError, match="draining"):
                service.drain(timeout=0.1)
