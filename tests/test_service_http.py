"""Tests for the HTTP front end, the Python client, and the acceptance
criterion: service results are byte-identical to :meth:`Machine.run`."""

from __future__ import annotations

import base64
import json
import pickle
import threading
import urllib.request

import pytest

from repro.api import Machine, SimulationRequest
from repro.errors import SimulationError
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SimulationService,
)
from repro.workloads import build_benchmark

SCALE = 0.05

#: The paper's four machine models, as registered in the model registry.
FOUR_MODELS = ("reference", "multithreaded-2", "dual-scalar", "ideal")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("service-store"))
    service = SimulationService(store=store, workers=2)
    with ServiceServer(service, port=0) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz()["status"] == "ok"

    def test_stats_document(self, client):
        stats = client.stats()
        assert "submitted" in stats and "store" in stats

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.job("no-such-job")

    def test_unknown_path_404(self, client, server):
        with pytest.raises(ServiceError, match="404"):
            client._call("/nope")
        with pytest.raises(ServiceError, match="404"):
            client._call("/nope", {"post": "body"})

    def test_bad_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_empty_body_400(self, server):
        request = urllib.request.Request(server.url + "/jobs", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    @pytest.mark.parametrize(
        "document",
        [
            {"machine": "reference"},  # no workloads
            {"workloads": ["tomcatv"]},  # no machine
            {"machine": "reference", "workloads": ["tomcatv"], "mode": "nope"},
            {"machine": "reference", "workloads": ["no-such-benchmark"]},
            {"machine": "no-such-model", "workloads": ["tomcatv"]},
            {"machine": "reference", "workloads": ["tomcatv"], "bogus": 1},
            {"machine": "reference", "workloads": ["tomcatv"], "priority": "high"},
            {"machine": "reference", "workloads": ["tomcatv"], "options": 5},
            {"machine": "reference", "workloads": [7]},
            {"machine": "reference", "workloads": [{"benchmark": "tomcatv", "x": 1}]},
            {"machine": "reference", "workloads": [{"weird": True}]},
            {"request_pickle": "bm90IGEgcGlja2xl"},
            {"request_pickle": base64.b64encode(pickle.dumps("a string")).decode()},
            {"request_pickle": "x", "machine": "reference"},
        ],
    )
    def test_malformed_job_documents_400(self, client, document):
        with pytest.raises(ServiceError, match="400"):
            client._call("/jobs", document)


class TestSubmission:
    def test_submit_wait_roundtrip(self, client):
        handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        result = handle.wait(timeout=120.0)
        local = Machine.named("reference").run(build_benchmark("tomcatv", scale=SCALE))
        assert result.cycles == local.cycles
        info = handle.info()
        assert info["state"] == "done"

    def test_custom_workload_spec(self, client):
        spec = {
            "workload": {
                "name": "custom",
                "vector_instructions": 60,
                "scalar_instructions": 40,
                "loops": [{"kernel": "triad", "vl": 32, "weight": 1.0, "stride": 1}],
            }
        }
        result = client.submit("reference", spec).wait(timeout=120.0)
        assert result.instructions > 0

    def test_pickled_request_submission(self, client):
        program = build_benchmark("swm256", scale=SCALE)
        request = SimulationRequest.single("reference", program, tag="pickled")
        result = client.submit_request(request).wait(timeout=120.0)
        local = Machine.named("reference").run(program)
        assert pickle.dumps(result.stats) == pickle.dumps(local.stats)

    def test_in_memory_workload_auto_ships_as_pickle(self, client):
        program = build_benchmark("swm256", scale=SCALE)
        handle = client.submit("reference", program)
        assert handle.wait(timeout=120.0).instructions > 0

    def test_group_mode_over_json(self, client):
        result = client.submit(
            "multithreaded-2",
            [{"benchmark": "swm256", "scale": SCALE}, {"benchmark": "tomcatv", "scale": SCALE}],
            mode="group",
        ).wait(timeout=120.0)
        local = Machine.named("multithreaded-2").run_group(
            [build_benchmark("swm256", scale=SCALE), build_benchmark("tomcatv", scale=SCALE)]
        )
        assert pickle.dumps(result.stats) == pickle.dumps(local.stats)

    def test_unpicklable_submission_raises_client_side(self, client):
        from repro.core.suppliers import Job

        job = Job("closure", lambda: iter(()))
        with pytest.raises(ServiceError, match="unpicklable"):
            client.submit("reference", [job])

    def test_failed_job_raises_on_wait(self, client):
        # valid document, but the group run fails in the worker: the
        # dual-scalar model refuses restart_companions=False
        handle = client.submit(
            "dual-scalar",
            [{"benchmark": "tomcatv", "scale": SCALE}, {"benchmark": "swm256", "scale": SCALE}],
            mode="group",
            restart_companions=False,
        )
        with pytest.raises(SimulationError, match="failed"):
            handle.wait(timeout=120.0)


class TestCoalescingOverHTTP:
    def test_concurrent_identical_submissions_one_execution(self, tmp_path):
        service = SimulationService(
            store=ResultStore(tmp_path), workers=2, paused=True
        )
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            document = {"benchmark": "tomcatv", "scale": SCALE}
            handles = []
            lock = threading.Lock()

            def submit() -> None:
                handle = client.submit("reference", document, memory_latency=64)
                with lock:
                    handles.append(handle)

            threads = [threading.Thread(target=submit) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.resume()
            payloads = [handle.result_bytes(timeout=120.0) for handle in handles]
            # every waiter sees byte-identical result payloads
            assert payloads[0] == payloads[1] == payloads[2]
            stats = client.stats()
            assert stats["submitted"] == 3
            assert stats["executed"] == 1
            assert stats["coalesced"] == 2
            served = sorted(handle.served_from for handle in handles)
            assert served == ["coalesced", "coalesced", "executed"]


class TestEquivalence:
    @pytest.mark.parametrize("model", FOUR_MODELS)
    def test_service_results_byte_identical_to_machine_run(self, client, model):
        """Acceptance criterion: submit().wait() == Machine.run, all 4 models."""
        document = {"benchmark": "dyfesm", "scale": SCALE}
        remote = client.submit(model, document).wait(timeout=120.0)
        local = Machine.named(model).run(build_benchmark("dyfesm", scale=SCALE))
        assert remote.cycles == local.cycles
        assert remote.stop_reason == local.stop_reason
        assert pickle.dumps(remote.stats) == pickle.dumps(local.stats)


class TestServerLifecycle:
    def test_stop_is_idempotent_and_shuts_service(self, tmp_path):
        service = SimulationService(store=ResultStore(tmp_path), workers=1)
        server = ServiceServer(service, port=0).start()
        url = server.url
        assert json.loads(urllib.request.urlopen(url + "/healthz").read())["status"] == "ok"
        server.stop()
        server.stop()  # no-op
        with pytest.raises(SimulationError):
            service.submit(
                SimulationRequest.single(
                    "reference", build_benchmark("tomcatv", scale=SCALE)
                )
            )


class TestLongPoll:
    def test_follow_on_finished_job_returns_immediately(self, client):
        handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        handle.wait(timeout=120.0)
        info = client._call(f"/jobs/{handle.job_id}?follow=1&wait=30")
        assert info["state"] == "done"

    def test_follow_timeout_reports_current_state(self, tmp_path):
        service = SimulationService(store=ResultStore(tmp_path), workers=1, paused=True)
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            import time

            started = time.monotonic()
            info = client._call(f"/jobs/{handle.job_id}?follow=1&wait=0.3")
            elapsed = time.monotonic() - started
            assert info["state"] == "queued"  # bounded wait, then current state
            assert 0.2 <= elapsed < 5.0

    def test_follow_blocks_until_completion(self, tmp_path):
        import threading

        service = SimulationService(store=ResultStore(tmp_path), workers=1, paused=True)
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            timer = threading.Timer(0.2, service.resume)
            timer.start()
            try:
                info = client._call(
                    f"/jobs/{handle.job_id}?follow=1&wait=20", timeout=60.0
                )
            finally:
                timer.cancel()
            assert info["state"] == "done"
            assert "result_pickle" in info

    def test_bad_wait_value_400(self, client):
        handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        handle.wait(timeout=120.0)
        with pytest.raises(ServiceError, match="400"):
            client._call(f"/jobs/{handle.job_id}?follow=1&wait=soon")

    def test_follow_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client._call("/jobs/no-such-job?follow=1&wait=1")

    def test_service_poll_unknown_id_is_none(self, server):
        assert server.service.poll("no-such-job", timeout=0.0) is None


class TestMetricsEndpoint:
    def test_plaintext_counters(self, client):
        client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE}).wait(
            timeout=120.0
        )
        text = client.metrics()
        lines = dict(line.split(" ", 1) for line in text.strip().splitlines())
        assert int(lines["repro_submitted_total"]) >= 1
        assert "repro_store_hit_rate" in lines
        assert "repro_coalesce_rate" in lines
        assert "repro_queue_pending" in lines
        assert int(lines["repro_store_entries"]) >= 1

    def test_rates_derived_from_counters(self, client):
        text = client.metrics()
        lines = dict(line.split(" ", 1) for line in text.strip().splitlines())
        submitted = int(lines["repro_submitted_total"])
        hits = int(lines["repro_store_hits_total"])
        assert float(lines["repro_store_hit_rate"]) == pytest.approx(
            hits / submitted, rel=1e-6
        )

    def test_render_metrics_without_store(self):
        from repro.service import render_metrics

        text = render_metrics({"submitted": 0, "paused": True})
        assert "repro_store_hit_rate 0" in text
        assert "repro_paused 1" in text
        assert "repro_store_entries" not in text


class TestClientRetries:
    def test_dead_server_exhausts_retry_budget(self):
        import time

        client = ServiceClient(
            "http://127.0.0.1:9", timeout=0.5, retries=2, retry_interval=0.05
        )
        started = time.monotonic()
        with pytest.raises(ServiceError, match="after 3 attempt"):
            client.healthz()
        # two backoff sleeps happened: jitter bounds them below by
        # 0.5 * (interval + 2 * interval) = 1.5 * retry_interval
        assert time.monotonic() - started >= 0.07

    def test_http_errors_are_not_retried(self, client, monkeypatch):
        calls = {"n": 0}
        original = urllib.request.urlopen

        def counting(request, timeout=None):
            calls["n"] += 1
            return original(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", counting)
        with pytest.raises(ServiceError, match="404"):
            client.job("no-such-job")
        assert calls["n"] == 1

    def test_zero_retries_single_attempt(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.3, retries=0)
        with pytest.raises(ServiceError, match="after 1 attempt"):
            client.healthz()


class TestClientDetails:
    def test_submit_with_instruction_limit_and_tag(self, client):
        handle = client.submit(
            "reference",
            {"benchmark": "tomcatv", "scale": SCALE},
            instruction_limit=50,
            tag="fractional",
            priority=1,
        )
        result = handle.wait(timeout=120.0)
        local = Machine.named("reference").run(
            build_benchmark("tomcatv", scale=SCALE), instruction_limit=50
        )
        assert pickle.dumps(result.stats) == pickle.dumps(local.stats)
        info = handle.info()
        assert info["tag"] == "fractional" and info["priority"] == 1

    def test_wait_times_out_on_stalled_job(self, tmp_path):
        service = SimulationService(
            store=ResultStore(tmp_path), workers=1, paused=True
        )
        with ServiceServer(service, port=0) as server:
            stalled = ServiceClient(server.url)
            handle = stalled.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            assert handle.info()["state"] == "queued"
            with pytest.raises(ServiceError, match="timed out"):
                handle.wait(timeout=0.2)

    def test_mixed_workload_list_ships_as_pickle(self, client):
        # a benchmark name next to an in-memory Program must materialize
        # client-side and take the pickled path, not crash the server
        program = build_benchmark("swm256", scale=SCALE)
        result = client.submit(
            "multithreaded-2", ["tomcatv", program], mode="group"
        ).wait(timeout=120.0)
        local = Machine.named("multithreaded-2").run_group(
            [build_benchmark("tomcatv", scale=1.0), program]
        )
        assert pickle.dumps(result.stats) == pickle.dumps(local.stats)


class TestOverloadHTTP:
    @pytest.fixture()
    def saturated(self, tmp_path):
        service = SimulationService(
            store=None, workers=1, max_pending=1, paused=True
        )
        with ServiceServer(service, port=0) as running:
            overload_client = ServiceClient(running.url, retries=0)
            overload_client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            yield running, overload_client

    def test_shed_submission_gets_429_with_retry_after(self, saturated):
        server, overload_client = saturated
        with pytest.raises(ServiceError, match="429") as exc:
            overload_client.submit("reference", {"benchmark": "swm256", "scale": SCALE})
        assert exc.value.status == 429
        body = json.dumps({"machine": "reference", "workloads": ["swm256"]}).encode()
        request = urllib.request.Request(
            server.url + "/jobs", data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as http_exc:
            urllib.request.urlopen(request)
        assert http_exc.value.code == 429
        assert int(http_exc.value.headers["Retry-After"]) >= 1
        assert "retry_after" in json.loads(http_exc.value.read())

    def test_coalescing_join_is_still_admitted(self, saturated):
        _, overload_client = saturated
        joined = overload_client.submit(
            "reference", {"benchmark": "tomcatv", "scale": SCALE}
        )
        assert joined.served_from == "coalesced"

    def test_client_retries_429_until_capacity_returns(self, saturated):
        # unblocking the queue while a patient client backs off turns its
        # shed submission into an accepted one — no caller-side handling
        server, _ = saturated
        patient = ServiceClient(server.url, retries=4, retry_interval=0.05)
        release = threading.Timer(0.15, server.service.resume)
        release.start()
        try:
            handle = patient.submit(
                "reference", {"benchmark": "swm256", "scale": SCALE}
            )
            assert handle.job_id
        finally:
            release.cancel()

    def test_rejected_counter_in_metrics(self, saturated):
        server, overload_client = saturated
        with pytest.raises(ServiceError):
            overload_client.submit("reference", {"benchmark": "swm256", "scale": SCALE})
        assert "repro_rejected_total 1" in overload_client.metrics()


class TestCancelHTTP:
    @pytest.fixture()
    def paused_server(self, tmp_path):
        service = SimulationService(store=None, workers=1, paused=True)
        with ServiceServer(service, port=0) as running:
            yield running

    def test_delete_cancels_queued_job(self, paused_server):
        cancel_client = ServiceClient(paused_server.url)
        handle = cancel_client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        assert handle.cancel() is True
        assert handle.info()["state"] == "cancelled"
        from repro.errors import JobCancelled

        with pytest.raises(JobCancelled):
            handle.wait(timeout=5.0)

    def test_delete_finished_job_conflicts(self, client):
        handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        handle.wait(timeout=120.0)
        assert handle.cancel() is False

    def test_delete_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.cancel("no-such-job")


class TestJobTimeoutHTTP:
    def test_timeout_field_reaches_the_service(self, tmp_path):
        service = SimulationService(store=None, workers=1, paused=True)
        with ServiceServer(service, port=0) as running:
            timeout_client = ServiceClient(running.url)
            handle = timeout_client.submit(
                "reference", {"benchmark": "tomcatv", "scale": SCALE},
                job_timeout=0.05,
            )
            from repro.errors import JobTimeout

            with pytest.raises(JobTimeout):
                handle.wait(timeout=10.0)
            assert handle.info()["timeout"] == 0.05

    def test_bad_timeout_is_a_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.submit(
                "reference", {"benchmark": "tomcatv", "scale": SCALE},
                job_timeout=-1.0,
            )


class TestConnResetRetry:
    def test_injected_reset_is_retried_transparently(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, clear_fault_plan, set_fault_plan

        service = SimulationService(store=None, workers=1)
        with ServiceServer(service, port=0) as running:
            resilient = ServiceClient(running.url, retries=2, retry_interval=0.01)
            set_fault_plan(
                FaultPlan([FaultSpec("conn_reset", count=1)]), install_env=False
            )
            try:
                assert resilient.healthz()["status"] == "ok"
            finally:
                clear_fault_plan()

    def test_reset_beyond_budget_surfaces(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, clear_fault_plan, set_fault_plan

        service = SimulationService(store=None, workers=1)
        with ServiceServer(service, port=0) as running:
            brittle = ServiceClient(running.url, retries=0)
            set_fault_plan(
                FaultPlan([FaultSpec("conn_reset", count=5)]), install_env=False
            )
            try:
                with pytest.raises(ServiceError, match="cannot reach"):
                    brittle.healthz()
            finally:
                clear_fault_plan()
