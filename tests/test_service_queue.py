"""Tests for the coalescing priority queue."""

from __future__ import annotations

import threading

import pytest

from repro.service import CoalescingPriorityQueue


def _key(tag: str) -> tuple:
    return ("config", "single", (tag,), None, True)


class TestCoalescing:
    def test_identical_keys_share_one_entry(self):
        queue = CoalescingPriorityQueue()
        entry_a, coalesced_a = queue.offer(_key("x"), "req", "job-1")
        entry_b, coalesced_b = queue.offer(_key("x"), "req", "job-2")
        assert not coalesced_a and coalesced_b
        assert entry_a is entry_b
        assert entry_a.job_ids == ["job-1", "job-2"]
        assert len(queue) == 1 and queue.pending_count() == 1

    def test_take_returns_each_entry_once(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("x"), "req", "job-1")
        queue.offer(_key("x"), "req", "job-2")
        queue.offer(_key("y"), "req", "job-3")
        taken = {tuple(queue.take(timeout=0.1).key) for _ in range(2)}
        assert taken == {_key("x"), _key("y")}
        assert queue.take(timeout=0.01) is None
        assert queue.running_count() == 2

    def test_coalescing_onto_running_entry(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("x"), "req", "job-1")
        entry = queue.take(timeout=0.1)
        joined, coalesced = queue.offer(_key("x"), "req", "job-2")
        assert coalesced and joined is entry and entry.running
        assert queue.take(timeout=0.01) is None  # still one execution
        queue.finish(_key("x"))
        # after completion the key is free again: a new offer is a new entry
        fresh, coalesced = queue.offer(_key("x"), "req", "job-3")
        assert not coalesced and fresh is not entry


class TestPriority:
    def test_higher_priority_dispatches_first(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("low"), "req", "job-1", priority=0)
        queue.offer(_key("high"), "req", "job-2", priority=9)
        queue.offer(_key("mid"), "req", "job-3", priority=5)
        order = [queue.take(timeout=0.1).key for _ in range(3)]
        assert order == [_key("high"), _key("mid"), _key("low")]

    def test_fifo_within_a_priority(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("first"), "req", "job-1", priority=3)
        queue.offer(_key("second"), "req", "job-2", priority=3)
        assert queue.take(timeout=0.1).key == _key("first")

    def test_coalesced_submission_raises_priority(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("slow"), "req", "job-1", priority=0)
        queue.offer(_key("other"), "req", "job-2", priority=5)
        entry, coalesced = queue.offer(_key("slow"), "req", "job-3", priority=9)
        assert coalesced and entry.priority == 9
        # the raised entry now outranks the priority-5 one; its stale heap
        # position must not produce a duplicate dispatch
        order = [queue.take(timeout=0.1).key for _ in range(2)]
        assert order == [_key("slow"), _key("other")]
        assert queue.take(timeout=0.01) is None

    def test_lower_priority_join_does_not_demote(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("hot"), "req", "job-1", priority=9)
        entry, _ = queue.offer(_key("hot"), "req", "job-2", priority=1)
        assert entry.priority == 9


class TestLifecycle:
    def test_blocking_take_wakes_on_offer(self):
        queue = CoalescingPriorityQueue()
        seen = []

        def taker() -> None:
            seen.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.offer(_key("x"), "req", "job-1")
        thread.join(timeout=5.0)
        assert seen and seen[0].key == _key("x")

    def test_close_wakes_blocked_takers_and_refuses_offers(self):
        queue = CoalescingPriorityQueue()
        seen = []

        def taker() -> None:
            seen.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert seen == [None]
        with pytest.raises(RuntimeError):
            queue.offer(_key("x"), "req", "job-1")

    def test_closed_queue_still_drains(self):
        queue = CoalescingPriorityQueue()
        queue.offer(_key("x"), "req", "job-1")
        queue.close()
        assert queue.take(timeout=0.1).key == _key("x")
        assert queue.take(timeout=0.1) is None

    def test_finish_unknown_key_is_noop(self):
        assert CoalescingPriorityQueue().finish(_key("ghost")) is None
