"""Chaos tests: the service under injected faults, admission and deadlines.

The central invariant: whatever fails underneath — a crashing worker, a
corrupted store entry, an overloaded queue — every job that completes
completes with the *canonical payload bytes*, i.e. exactly what
:func:`repro.api.batch._execute_request_to_bytes` produces in-process for the
same request.
"""

from __future__ import annotations

import time

import pytest

from repro.api.batch import SimulationRequest, _execute_request_to_bytes
from repro.errors import (
    ConfigurationError,
    JobCancelled,
    JobTimeout,
    ServiceOverloadedError,
    SimulationError,
)
from repro.faults import FaultPlan, FaultSpec, clear_fault_plan, set_fault_plan
from repro.service import JobState, ResultStore, SimulationService
from repro.workloads import build_benchmark

SCALE = 0.05


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


def _request(benchmark: str = "tomcatv", **options) -> SimulationRequest:
    return SimulationRequest.single(
        "reference", build_benchmark(benchmark, scale=SCALE), **options
    )


class TestCrashRecovery:
    def test_single_crash_is_retried_with_identical_bytes(self, tmp_path):
        set_fault_plan(
            FaultPlan(
                [FaultSpec("worker_crash", count=1)],
                state_dir=tmp_path / "faults",
            )
        )
        request = _request()
        with SimulationService(store=None, workers=1, max_retries=2) as service:
            record = service.wait(service.submit(request).job_id, timeout=300.0)
            assert record.state is JobState.DONE
            stats = service.stats()
            assert stats["worker_crashes"] == 1
            assert stats["retried"] == 1
            assert stats["failover_local"] == 0
            payload = record.payload
        clear_fault_plan()
        assert payload == _execute_request_to_bytes(request)

    def test_crash_loop_fails_over_to_thread_path(self, tmp_path):
        # the budget is exhausted by a plan that crashes every pool
        # execution; the entry must still complete — in-process — with
        # canonical bytes, not wedge the dispatcher
        set_fault_plan(
            FaultPlan(
                [FaultSpec("worker_crash", count=50)],
                state_dir=tmp_path / "faults",
            )
        )
        request = _request()
        with SimulationService(store=None, workers=1, max_retries=1) as service:
            record = service.wait(service.submit(request).job_id, timeout=300.0)
            assert record.state is JobState.DONE
            stats = service.stats()
            assert stats["worker_crashes"] == 2  # max_retries + 1 attempts
            assert stats["failover_local"] == 1
            payload = record.payload
        clear_fault_plan()
        assert payload == _execute_request_to_bytes(request)

    def test_crashes_do_not_fail_coalesced_waiters(self, tmp_path):
        set_fault_plan(
            FaultPlan(
                [FaultSpec("worker_crash", count=1)],
                state_dir=tmp_path / "faults",
            )
        )
        with SimulationService(store=None, workers=1, paused=True) as service:
            first = service.submit(_request())
            second = service.submit(_request())
            assert second.served_from == "coalesced"
            service.resume()
            a = service.wait(first.job_id, timeout=300.0)
            b = service.wait(second.job_id, timeout=300.0)
            assert a.state is JobState.DONE and b.state is JobState.DONE
            assert a.payload == b.payload


class TestStoreCorruptionViaService:
    def test_corrupt_store_entry_re_executes_identically(self, tmp_path):
        request = _request()
        with SimulationService(store=ResultStore(tmp_path / "store"), workers=1) as service:
            clean = service.wait(service.submit(request).job_id, timeout=300.0)
            # next store read is scribbled over before parsing
            set_fault_plan(
                FaultPlan([FaultSpec("store_corrupt", count=1)]), install_env=False
            )
            redone = service.wait(service.submit(request).job_id, timeout=300.0)
            assert redone.served_from == "executed"  # corrupt entry = miss
            assert redone.payload == clean.payload
            assert service.store.quarantined == 1


class TestAdmissionControl:
    def test_sheds_past_queue_depth(self):
        with SimulationService(store=None, workers=1, max_pending=1, paused=True) as service:
            service.submit(_request())
            with pytest.raises(ServiceOverloadedError) as exc:
                service.submit(_request("swm256"))
            assert exc.value.retry_after > 0
            assert service.stats()["rejected"] == 1

    def test_sheds_past_queued_bytes(self):
        with SimulationService(
            store=None, workers=1, max_queued_bytes=1, paused=True
        ) as service:
            with pytest.raises(ServiceOverloadedError, match="queued bytes"):
                service.submit(_request())

    def test_coalescing_join_bypasses_admission(self):
        with SimulationService(store=None, workers=1, max_pending=1, paused=True) as service:
            service.submit(_request())
            join = service.submit(_request())  # same key: no new entry
            assert join.served_from == "coalesced"

    def test_store_hit_bypasses_admission(self, tmp_path):
        request = _request()
        with SimulationService(
            store=ResultStore(tmp_path), workers=1, max_pending=1
        ) as service:
            service.wait(service.submit(request).job_id, timeout=300.0)
            service.pause()
            service.submit(_request("swm256"))  # saturates the queue
            hit = service.submit(request)
            assert hit.served_from == "store" and hit.state is JobState.DONE

    def test_queued_bytes_are_released_on_completion(self):
        with SimulationService(store=None, workers=1) as service:
            job = service.submit(_request())
            service.wait(job.job_id, timeout=300.0)
            service.drain(timeout=60.0)
            assert service.stats()["queued_bytes"] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationService(max_pending=0)
        with pytest.raises(ConfigurationError):
            SimulationService(max_queued_bytes=0)
        with pytest.raises(ConfigurationError):
            SimulationService(default_timeout=0)
        with pytest.raises(ConfigurationError):
            SimulationService(max_retries=-1)


class TestCancellation:
    def test_cancel_queued_job(self):
        with SimulationService(store=None, workers=1, paused=True) as service:
            job = service.submit(_request())
            assert service.cancel(job.job_id) is True
            record = service.job(job.job_id)
            assert record.state is JobState.CANCELLED
            with pytest.raises(JobCancelled):
                record.result()
            assert service.stats()["cancelled"] == 1
            assert service.stats()["pending"] == 0  # entry retired with it

    def test_cancel_finished_job_returns_false(self):
        with SimulationService(store=None, workers=1) as service:
            job = service.submit(_request())
            service.wait(job.job_id, timeout=300.0)
            assert service.cancel(job.job_id) is False
            assert service.job(job.job_id).state is JobState.DONE

    def test_cancel_unknown_job_raises(self):
        with SimulationService(store=None, workers=1) as service:
            with pytest.raises(SimulationError, match="unknown job id"):
                service.cancel("deadbeef")

    def test_cancel_one_coalesced_waiter_keeps_the_entry(self):
        with SimulationService(store=None, workers=1, paused=True) as service:
            keep = service.submit(_request())
            drop = service.submit(_request())
            assert service.cancel(drop.job_id) is True
            assert service.stats()["pending"] == 1  # entry still queued
            service.resume()
            record = service.wait(keep.job_id, timeout=300.0)
            assert record.state is JobState.DONE


class TestTimeouts:
    def test_queued_job_times_out(self):
        with SimulationService(store=None, workers=1, paused=True) as service:
            job = service.submit(_request(), timeout=0.05)
            deadline = time.monotonic() + 5.0
            while not service.job(job.job_id).finished and time.monotonic() < deadline:
                time.sleep(0.01)
            record = service.job(job.job_id)
            assert record.state is JobState.TIMEOUT
            with pytest.raises(JobTimeout):
                record.result()
            assert service.stats()["timeouts"] == 1
            assert service.stats()["pending"] == 0  # sole waiter: entry dropped

    def test_default_timeout_applies(self):
        with SimulationService(
            store=None, workers=1, paused=True, default_timeout=0.05
        ) as service:
            job = service.submit(_request())
            assert service.job(job.job_id).timeout == 0.05

    def test_bad_timeout_rejected(self):
        with SimulationService(store=None, workers=1) as service:
            with pytest.raises(ConfigurationError):
                service.submit(_request(), timeout=-1.0)


class TestShutdownAndDrain:
    def test_shutdown_with_inflight_job(self):
        # a job slowed by fault injection is mid-execution when shutdown
        # lands; shutdown must return and later submissions must be refused
        set_fault_plan(
            FaultPlan([FaultSpec("slow_execute", count=1, delay=0.3)]),
            install_env=False,
        )
        service = SimulationService(store=None, workers=1)
        job = service.submit(SimulationRequest.single("reference", build_benchmark("tomcatv", scale=SCALE)))
        deadline = time.monotonic() + 5.0
        while service.stats()["running"] == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        service.shutdown(wait=True)
        with pytest.raises(SimulationError, match="shut down"):
            service.submit(_request("swm256"))
        # the in-flight job settled one way or the other, never half-done
        record = service.job(job.job_id)
        assert record is None or record.state in (
            JobState.DONE, JobState.FAILED, JobState.RUNNING,
        )

    def test_shutdown_is_idempotent(self):
        service = SimulationService(store=None, workers=1)
        service.shutdown()
        service.shutdown()  # second call is a no-op, not an error

    def test_wait_times_out_on_stuck_job(self):
        with SimulationService(store=None, workers=1, paused=True) as service:
            job = service.submit(_request())
            with pytest.raises(SimulationError, match="timed out after"):
                service.wait(job.job_id, timeout=0.05)

    def test_wait_unknown_job_raises(self):
        with SimulationService(store=None, workers=1) as service:
            with pytest.raises(SimulationError, match="unknown job id"):
                service.wait("deadbeef", timeout=0.1)

    def test_drain_times_out_with_paused_backlog(self):
        with SimulationService(store=None, workers=1, paused=True) as service:
            service.submit(_request())
            with pytest.raises(SimulationError, match="draining"):
                service.drain(timeout=0.05)
