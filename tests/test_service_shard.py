"""Tests for consistent-hash sharding: the ring, the sharded client, the
router front-end, and cluster-wide stats aggregation."""

from __future__ import annotations

import hashlib
import json
import socket
import urllib.request

import pytest

from repro.api import Machine, SimulationRequest
from repro.errors import ConfigurationError
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ShardRouter,
    ShardRouterServer,
    SimulationService,
    aggregate_stats,
    key_digest,
    parse_shard_urls,
)
from repro.workloads import build_benchmark

SCALE = 0.05

THREE = ("http://127.0.0.1:1001", "http://127.0.0.1:1002", "http://127.0.0.1:1003")


def _digests(count: int) -> list[str]:
    """Deterministic pseudo-random content-key digests."""
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(count)]


def _dead_url() -> str:
    """A URL nothing listens on (bound then immediately closed)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def _request_owned_by(router: ShardRouter, owner: str) -> SimulationRequest:
    """A real request whose ring owner is ``owner`` (probes option space)."""
    program = build_benchmark("tomcatv", scale=SCALE)
    for latency in range(40, 400):
        request = SimulationRequest.single("reference", program, memory_latency=latency)
        if router.shard_for(request.cache_key()) == owner:
            return request
    raise AssertionError(f"no probe request hashed onto {owner}")


def _document_owned_by(router: ShardRouter, owner: str) -> dict:
    """A job document whose parsed content key is owned by ``owner``."""
    from repro.service import parse_job_document

    for latency in range(40, 400):
        document = {
            "machine": "reference",
            "workloads": [{"benchmark": "tomcatv", "scale": SCALE}],
            "options": {"memory_latency": latency},
        }
        request, _priority, _timeout = parse_job_document(document)
        if router.shard_for(request.cache_key()) == owner:
            return document
    raise AssertionError(f"no probe document hashed onto {owner}")


class TestParseShardUrls:
    def test_comma_string_and_sequence_agree(self):
        assert parse_shard_urls("http://a:1,http://b:2") == ("http://a:1", "http://b:2")
        assert parse_shard_urls(["http://a:1", "http://b:2"]) == ("http://a:1", "http://b:2")

    def test_normalizes_slashes_whitespace_and_duplicates(self):
        assert parse_shard_urls(" http://a:1/ , http://a:1, ,http://b:2 ") == (
            "http://a:1",
            "http://b:2",
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_shard_urls("")
        with pytest.raises(ConfigurationError):
            parse_shard_urls([" , "])


class TestRing:
    def test_owner_is_order_independent(self):
        forward = ShardRouter(THREE)
        backward = ShardRouter(tuple(reversed(THREE)))
        for digest in _digests(200):
            assert forward.shard_for_digest(digest) == backward.shard_for_digest(digest)

    def test_ownership_is_roughly_balanced(self):
        router = ShardRouter(THREE)
        counts = {shard: 0 for shard in THREE}
        for digest in _digests(3000):
            counts[router.shard_for_digest(digest)] += 1
        for count in counts.values():
            assert count > 3000 * 0.15  # no shard starves

    def test_removing_a_shard_only_remaps_its_keys(self):
        full = ShardRouter(THREE)
        reduced = ShardRouter(THREE[:2])
        for digest in _digests(500):
            owner = full.shard_for_digest(digest)
            if owner != THREE[2]:
                # keys owned by surviving shards must not move
                assert reduced.shard_for_digest(digest) == owner

    def test_preference_is_owner_first_and_covers_every_shard(self):
        router = ShardRouter(THREE)
        for digest in _digests(100):
            order = router.preference_for_digest(digest)
            assert order[0] == router.shard_for_digest(digest)
            assert sorted(order) == sorted(THREE)

    def test_preference_is_deterministic(self):
        router = ShardRouter(THREE)
        digest = _digests(1)[0]
        assert router.preference_for_digest(digest) == router.preference_for_digest(digest)

    def test_shard_for_uses_key_digest(self):
        router = ShardRouter(THREE)
        key = ("machine", "mode", "workload")
        assert router.shard_for(key) == router.shard_for_digest(key_digest(key))

    def test_shard_index_is_positional(self):
        router = ShardRouter(THREE)
        assert [router.shard_index(url) for url in THREE] == [0, 1, 2]

    def test_bad_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(THREE, replicas=0)


class TestAggregateStats:
    def test_counters_sum_and_stores_merge(self):
        a = {
            "submitted": 3, "executed": 2, "coalesced": 1, "paused": False,
            "uptime_seconds": 10.0,
            "store": {"entries": 2, "bytes": 100, "max_bytes": 1000,
                      "quarantine_bytes": 5, "directory": "/a"},
        }
        b = {
            "submitted": 4, "executed": 4, "coalesced": 0, "paused": True,
            "uptime_seconds": 7.0,
            "store": {"entries": 1, "bytes": 50, "max_bytes": 1000,
                      "quarantine_bytes": 0, "directory": "/b"},
        }
        merged = aggregate_stats([a, b])
        assert merged["submitted"] == 7
        assert merged["executed"] == 6
        assert merged["coalesced"] == 1
        assert merged["paused"] is True
        assert merged["uptime_seconds"] == 10.0
        assert merged["shard_count"] == 2
        assert merged["store"]["entries"] == 3
        assert merged["store"]["bytes"] == 150
        assert merged["store"]["max_bytes"] == 2000
        assert merged["store"]["quarantine_bytes"] == 5
        assert merged["store"]["directories"] == ["/a", "/b"]

    def test_unbounded_store_wins(self):
        merged = aggregate_stats(
            [{"store": {"max_bytes": 100}}, {"store": {"max_bytes": None}}]
        )
        assert merged["store"]["max_bytes"] is None

    def test_empty_cluster(self):
        merged = aggregate_stats([])
        assert merged["submitted"] == 0
        assert merged["paused"] is False
        assert "store" not in merged


@pytest.fixture()
def two_shards(tmp_path):
    """Two real paused services behind HTTP, yielded as (servers, urls)."""
    servers = []
    for index in range(2):
        store = ResultStore(tmp_path / f"shard{index}")
        service = SimulationService(
            store=store, workers=1, paused=True, name=f"shard{index}"
        )
        servers.append(ServiceServer(service, port=0).start())
    try:
        yield servers, [server.url for server in servers]
    finally:
        for server in servers:
            server.stop()


class TestShardedClient:
    def test_routing_lands_on_ring_owner_and_coalesces_cluster_wide(self, two_shards):
        servers, urls = two_shards
        first = ServiceClient(urls)
        second = ServiceClient(list(reversed(urls)))  # order must not matter
        router = ShardRouter(urls)

        requests = [
            SimulationRequest.single("reference", build_benchmark(name, scale=SCALE))
            for name in ("tomcatv", "swm256", "dyfesm")
        ]
        handles = [client.submit_request(request)
                   for client in (first, second) for request in requests]
        for handle, request in zip(handles, requests * 2):
            assert handle.shard == router.shard_for(request.cache_key())
            assert handle.degraded is False
        for server in servers:
            server.service.resume()
        payloads = [handle.result_bytes(timeout=120.0) for handle in handles]
        # both clients see byte-identical payloads per request
        for index in range(len(requests)):
            assert payloads[index] == payloads[index + len(requests)]
        # cluster-wide coalescing: six submissions, three executions
        stats = first.stats()
        assert stats["submitted"] == 6
        assert stats["executed"] == 3
        assert stats["shard_count"] == 2
        assert all(entry["ok"] for entry in stats["shards"])
        names = {entry["stats"]["name"] for entry in stats["shards"]}
        assert names == {"shard0", "shard1"}

    def test_results_byte_identical_to_machine_run(self, two_shards):
        servers, urls = two_shards
        for server in servers:
            server.service.resume()
        client = ServiceClient(urls)
        result = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE}).wait(
            timeout=120.0
        )
        local = Machine.named("reference").run(build_benchmark("tomcatv", scale=SCALE))
        assert result.cycles == local.cycles

    def test_follow_up_calls_route_to_owning_shard(self, two_shards):
        servers, urls = two_shards
        client = ServiceClient(urls)
        request = SimulationRequest.single(
            "reference", build_benchmark("tomcatv", scale=SCALE)
        )
        handle = client.submit_request(request)
        # the job only exists on its owning shard, so info()/cancel() working
        # at all proves the client routed the follow-up correctly
        assert handle.info()["state"] == "queued"
        assert handle.cancel() is True
        assert handle.info()["state"] == "cancelled"

    def test_failover_marks_degraded_and_still_serves(self, tmp_path):
        store = ResultStore(tmp_path / "live")
        service = SimulationService(store=store, workers=1)
        with ServiceServer(service, port=0) as live:
            dead = _dead_url()
            urls = [live.url, dead]
            router = ShardRouter(urls)
            client = ServiceClient(urls, timeout=2.0, retries=0)
            request = _request_owned_by(router, dead)
            handle = client.submit_request(request)
            assert handle.degraded is True
            assert handle.shard == live.url
            assert handle.wait(timeout=120.0).instructions > 0

    def test_all_shards_down_raises(self):
        client = ServiceClient([_dead_url(), _dead_url()], timeout=0.5, retries=0)
        request = SimulationRequest.single(
            "reference", build_benchmark("tomcatv", scale=SCALE)
        )
        with pytest.raises(ServiceError, match="no live shard"):
            client.submit_request(request)

    def test_healthz_and_metrics_aggregate(self, two_shards):
        servers, urls = two_shards
        client = ServiceClient(urls, timeout=2.0, retries=0)
        assert client.healthz()["status"] == "ok"
        text = client.metrics()
        assert "repro_submitted_total" in text
        degraded = ServiceClient([urls[0], _dead_url()], timeout=0.5, retries=0)
        health = degraded.healthz()
        assert health["status"] == "degraded"
        assert list(health["shards"].values()).count(True) == 1

    def test_single_url_client_keeps_plain_behaviour(self, two_shards):
        servers, urls = two_shards
        client = ServiceClient(urls[0])
        assert client._router is None
        handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
        assert handle.shard is None and handle.degraded is False


class TestRouterServer:
    def test_submit_status_result_through_router(self, two_shards):
        servers, urls = two_shards
        for server in servers:
            server.service.resume()
        with ShardRouterServer(urls) as router_server:
            client = ServiceClient(router_server.url)
            handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            shard_index, _, _rest = handle.job_id.partition("-")
            assert shard_index in ("0", "1")
            result = handle.wait(timeout=120.0)
            local = Machine.named("reference").run(
                build_benchmark("tomcatv", scale=SCALE)
            )
            assert result.cycles == local.cycles

    def test_submission_document_carries_shard_and_degraded(self, two_shards):
        servers, urls = two_shards
        for server in servers:
            server.service.resume()
        with ShardRouterServer(urls) as router_server:
            body = json.dumps(
                {"machine": "reference",
                 "workloads": [{"benchmark": "tomcatv", "scale": SCALE}]}
            ).encode()
            request = urllib.request.Request(
                router_server.url + "/jobs", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                answer = json.loads(response.read())
            assert answer["shard"] in urls
            assert answer["degraded"] is False
            assert answer["job_id"].split("-", 1)[0] == str(urls.index(answer["shard"]))

    def test_cancel_through_router(self, two_shards):
        servers, urls = two_shards  # services stay paused: jobs remain queued
        with ShardRouterServer(urls) as router_server:
            client = ServiceClient(router_server.url)
            handle = client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            assert handle.cancel() is True
            assert handle.info()["state"] == "cancelled"

    def test_stats_and_metrics_aggregate_across_shards(self, two_shards):
        servers, urls = two_shards
        with ShardRouterServer(urls) as router_server:
            client = ServiceClient(router_server.url)
            client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
            stats = client.stats()
            assert stats["shard_count"] == 2
            assert stats["submitted"] == 1
            assert [entry["ok"] for entry in stats["shards"]] == [True, True]
            assert "repro_submitted_total 1" in client.metrics()

    def test_unknown_and_malformed_routed_ids_404(self, two_shards):
        _servers, urls = two_shards
        with ShardRouterServer(urls) as router_server:
            client = ServiceClient(router_server.url)
            for bogus in ("no-prefix", "9-out-of-range", "plainid"):
                with pytest.raises(ServiceError, match="404"):
                    client.job(bogus)

    def test_bad_submission_rejected_without_forwarding(self, two_shards):
        _servers, urls = two_shards
        with ShardRouterServer(urls) as router_server:
            client = ServiceClient(router_server.url)
            with pytest.raises(ServiceError, match="400"):
                client._call("/jobs", {"machine": "reference"})  # no workloads

    def test_dead_shard_degrades_submission_and_healthz(self, two_shards):
        servers, urls = two_shards
        for server in servers:
            server.service.resume()
        dead = _dead_url()
        cluster = [urls[0], dead]
        with ShardRouterServer(cluster) as router_server:
            router = router_server.router
            health = json.loads(
                urllib.request.urlopen(router_server.url + "/healthz").read()
            )
            assert health["status"] == "degraded"
            body = _document_owned_by(router, dead)
            raw = urllib.request.Request(
                router_server.url + "/jobs", data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(raw) as response:
                answer = json.loads(response.read())
            assert answer["degraded"] is True
            assert answer["shard"] == urls[0]

    def test_all_shards_down_is_503(self):
        with ShardRouterServer([_dead_url(), _dead_url()]) as router_server:
            client = ServiceClient(router_server.url, retries=0)
            with pytest.raises(ServiceError, match="503"):
                client.submit("reference", {"benchmark": "tomcatv", "scale": SCALE})
