"""Tests for the durable, content-addressed :class:`ResultStore`."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import Machine, request_key
from repro.errors import ConfigurationError
from repro.service import ResultStore, code_fingerprint, key_digest
from repro.service.store import (
    ENTRY_SUFFIX,
    MAX_QUARANTINE_FILES,
    QUARANTINE_SUFFIX,
    STALE_TMP_SECONDS,
    TMP_SUFFIX,
)


@pytest.fixture(scope="module")
def run_and_key(small_tomcatv):
    """One real simulation result plus its content-hash request key."""
    machine = Machine.named("reference")
    result = machine.run(small_tomcatv)
    key = request_key(machine.config, "single", [small_tomcatv])
    return result, key


def _fake_key(tag: str) -> tuple:
    return ("config-" + tag, "single", ("workload-" + tag,), None, True)


class TestRoundTrip:
    def test_get_returns_fresh_equal_copies(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        assert store.get(key) is None
        store.put(key, result)
        first, second = store.get(key), store.get(key)
        assert first is not second
        assert first.cycles == result.cycles
        assert pickle.dumps(first.stats) == pickle.dumps(second.stats)
        assert store.hits == 2 and store.misses == 1
        assert key in store and len(store) == 1

    def test_round_trip_across_restart(self, tmp_path, run_and_key):
        result, key = run_and_key
        ResultStore(tmp_path).put(key, result)
        # a brand-new store instance on the same directory (a "restarted
        # service") serves the entry without re-simulating
        reborn = ResultStore(tmp_path)
        assert len(reborn) == 1
        hit = reborn.get(key)
        assert hit is not None and hit.cycles == result.cycles
        assert reborn.hits == 1 and reborn.misses == 0

    def test_round_trip_across_processes(self, tmp_path, run_and_key):
        result, key = run_and_key
        ResultStore(tmp_path).put(key, result)
        script = (
            "import pickle, sys\n"
            "from repro.service import ResultStore\n"
            "store = ResultStore(sys.argv[1])\n"
            "key = pickle.loads(bytes.fromhex(sys.argv[2]))\n"
            "hit = store.get(key)\n"
            "assert hit is not None, 'store entry must survive into a new process'\n"
            "print(hit.cycles)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), pickle.dumps(key).hex()],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == result.cycles

    def test_byte_identical_payloads(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        assert store.get_bytes(key) == store.get_bytes(key)


class TestEviction:
    def test_lru_eviction_at_size_bound(self, tmp_path, run_and_key):
        result, _ = run_and_key
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        # room for roughly two entries (envelope overhead included)
        store = ResultStore(tmp_path, max_bytes=int(len(payload) * 2.5))
        keys = [_fake_key(str(index)) for index in range(3)]
        store.put_bytes(keys[0], payload)
        store.put_bytes(keys[1], payload)
        assert len(store) == 2
        store.get_bytes(keys[0])  # refresh key 0 → key 1 becomes the LRU
        store.put_bytes(keys[2], payload)
        assert store.evictions >= 1
        assert keys[1] not in store
        assert keys[0] in store and keys[2] in store

    def test_eviction_order_survives_restart(self, tmp_path, run_and_key):
        result, _ = run_and_key
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        seed = ResultStore(tmp_path, max_bytes=None)
        keys = [_fake_key(str(index)) for index in range(3)]
        for key in keys:
            seed.put_bytes(key, payload)
        reborn = ResultStore(tmp_path, max_bytes=int(len(payload) * 2.5))
        reborn.put_bytes(_fake_key("fresh"), payload)
        # the oldest on-disk entries (mtime order) must be the ones evicted
        assert _fake_key("fresh") in reborn
        assert keys[0] not in reborn

    def test_oversized_single_entry_is_kept(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path, max_bytes=1)
        store.put(key, result)
        assert key in store  # the newest entry is never evicted by itself

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path, max_bytes=0)


class TestInvalidation:
    def test_corrupt_entry_degrades_to_miss(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        entry.write_bytes(b"\x80corrupt garbage")
        assert store.get(key) is None
        assert store.misses == 1
        assert not entry.exists()  # the broken file cannot keep failing

    def test_truncated_entry_degrades_to_miss(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        entry.write_bytes(entry.read_bytes()[:10])
        assert ResultStore(tmp_path).get(key) is None

    def test_code_version_change_invalidates(self, tmp_path, run_and_key):
        result, key = run_and_key
        old = ResultStore(tmp_path, fingerprint="repro-0.0-old")
        old.put(key, result)
        current = ResultStore(tmp_path)  # defaults to code_fingerprint()
        assert current.fingerprint == code_fingerprint()
        assert current.get(key) is None
        assert current.misses == 1
        assert len(current) == 0  # the stale entry was dropped

    def test_key_collision_guard(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        # simulate a digest collision: the file exists but holds another key
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        envelope = pickle.loads(entry.read_bytes())
        envelope["key"] = _fake_key("other")
        entry.write_bytes(pickle.dumps(envelope))
        assert store.get(key) is None


class TestQuarantine:
    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        entry.write_bytes(b"\x80corrupt garbage")
        assert store.get(key) is None
        assert store.quarantined == 1
        # the bytes survive under the quarantine name, for diagnosis
        aside = entry.with_name(entry.name + ".corrupt")
        assert aside.read_bytes() == b"\x80corrupt garbage"

    def test_quarantined_entry_is_never_rescanned(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        entry.write_bytes(b"\x80corrupt garbage")
        store.get(key)
        reopened = ResultStore(tmp_path)  # rescans the directory
        assert len(reopened) == 0
        assert reopened.get(key) is None
        assert reopened.quarantined == 0  # a miss, not a re-quarantine

    def test_clean_rewrite_after_quarantine(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        entry = tmp_path / (key_digest(key) + ENTRY_SUFFIX)
        entry.write_bytes(b"\x80corrupt garbage")
        store.get(key)
        store.put(key, result)  # the original path is free again
        assert store.get(key) is not None
        assert store.quarantined == 1

    def test_stale_entries_are_deleted_not_quarantined(self, tmp_path, run_and_key):
        result, key = run_and_key
        old = ResultStore(tmp_path, fingerprint="repro-0.0-old")
        old.put(key, result)
        current = ResultStore(tmp_path)
        assert current.get(key) is None
        assert current.quarantined == 0  # stale, parseable: plain delete
        assert list(tmp_path.glob("*.corrupt")) == []

    def test_stats_report_quarantines(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        (tmp_path / (key_digest(key) + ENTRY_SUFFIX)).write_bytes(b"junk")
        store.get(key)
        assert store.stats()["quarantined"] == 1


class TestSharedDirectory:
    def test_sibling_stores_evict_without_racing(self, tmp_path, run_and_key):
        # two store instances on one directory stand in for two service
        # processes; interleaved over-bound puts must stay consistent (the
        # advisory lock serializes eviction) and never raise
        result, key = run_and_key
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        bound = 3 * len(payload)
        a = ResultStore(tmp_path, max_bytes=bound)
        b = ResultStore(tmp_path, max_bytes=bound)
        for turn in range(8):
            (a if turn % 2 == 0 else b).put_bytes(_fake_key(f"k{turn}"), payload)
        # each instance's own index respects the bound
        assert a.total_bytes() <= bound + len(payload)
        assert b.total_bytes() <= bound + len(payload)

    def test_missing_victim_is_tolerated(self, tmp_path, run_and_key):
        result, key = run_and_key
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        store = ResultStore(tmp_path, max_bytes=3 * len(payload))
        for index in range(3):
            store.put_bytes(_fake_key(f"k{index}"), payload)
        # a sibling evicted a file underneath this instance's index
        victims = sorted(tmp_path.glob("*" + ENTRY_SUFFIX))
        victims[0].unlink()
        store.put_bytes(_fake_key("k-final"), payload)  # must not raise


class TestHousekeeping:
    def test_clear_empties_directory_and_counters(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path)
        store.put(key, result)
        store.get(key)
        store.clear()
        assert len(store) == 0 and store.hits == 0 and store.misses == 0
        assert not list(Path(tmp_path).glob("*" + ENTRY_SUFFIX))

    def test_stats_document(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path, max_bytes=1 << 20)
        store.put(key, result)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == store.total_bytes() > 0
        assert stats["max_bytes"] == 1 << 20
        assert stats["fingerprint"] == code_fingerprint()

    def test_drop_in_machine_cache(self, tmp_path, small_tomcatv):
        # ResultStore exposes the RunCache surface: Machine memoizes through it
        store = ResultStore(tmp_path)
        machine = Machine.named("reference", cache=store)
        first = machine.run(small_tomcatv)
        second = machine.run(small_tomcatv)
        assert store.hits == 1 and store.misses == 1
        assert first.cycles == second.cycles

    def test_concurrent_access_is_safe(self, tmp_path, run_and_key):
        result, key = run_and_key
        store = ResultStore(tmp_path, max_bytes=1 << 20)
        keys = [_fake_key(str(index)) for index in range(8)]
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        errors = []

        def hammer(seed: int) -> None:
            try:
                for turn in range(30):
                    target = keys[(seed + turn) % len(keys)]
                    if turn % 3 == 0:
                        store.put_bytes(target, payload)
                    else:
                        store.get_bytes(target)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


def _tmp_files(directory) -> list[str]:
    # pathlib.glob("*") skips dotfiles, and the unique tmp names are dotted
    return [name for name in os.listdir(directory) if name.endswith(TMP_SUFFIX)]


def _corrupt_files(directory) -> list[str]:
    return [name for name in os.listdir(directory) if name.endswith(QUARANTINE_SUFFIX)]


def _entry_bytes(directory) -> int:
    return sum(
        (Path(directory) / name).stat().st_size
        for name in os.listdir(directory)
        if name.endswith(ENTRY_SUFFIX)
    )


class TestSharedDirectoryBugfixes:
    """Regression tests for the three multi-process store bugs.

    Each fails on the pre-fix code: a shared tmp name could tear same-key
    writes and strand ``*.tmp`` files forever, quarantined ``.corrupt`` files
    leaked disk without bound, and eviction only saw this process's own
    index, so sibling processes collectively overshot ``max_bytes``.
    """

    def test_stranded_tmp_files_are_swept_on_scan(self, tmp_path):
        # a writer that crashed between write_bytes and os.replace leaves its
        # tmp file behind; _scan must sweep it once stale (old shared-name
        # form and new unique-name form alike) while keeping a fresh tmp that
        # may belong to a live sibling's in-flight write
        digest = key_digest(_fake_key("crashed"))
        ancient = time.time() - 2 * STALE_TMP_SECONDS
        for strand in (f"{digest}.tmp", f".{digest}.99999-0.tmp"):
            path = tmp_path / strand
            path.write_bytes(b"half-written envelope")
            os.utime(path, (ancient, ancient))
        fresh = tmp_path / f".{digest}.12345-1.tmp"
        fresh.write_bytes(b"in-flight sibling write")
        ResultStore(tmp_path)
        assert _tmp_files(tmp_path) == [fresh.name]

    def test_concurrent_writers_never_share_a_tmp_path(self, tmp_path):
        # two store instances (standing in for two processes) writing the
        # same key must write through distinct tmp files, and repeated writes
        # from one instance must too (the pre-fix code used one shared name,
        # so a pair of writers could os.replace each other's half-written
        # envelope or crash on the second replace)
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        digest = key_digest(_fake_key("hot"))
        names = {a._tmp_path(digest).name, b._tmp_path(digest).name, a._tmp_path(digest).name}
        assert len(names) == 3
        a.put_bytes(_fake_key("hot"), b"payload")
        assert _tmp_files(tmp_path) == []  # consumed by the atomic replace

    def test_quarantine_retention_is_capped(self, tmp_path):
        store = ResultStore(tmp_path)
        garbage = b"\x80garbage"
        extra = 5
        for index in range(MAX_QUARANTINE_FILES + extra):
            key = _fake_key(f"q{index}")
            store.put_bytes(key, b"payload")
            (tmp_path / (key_digest(key) + ENTRY_SUFFIX)).write_bytes(garbage)
            assert store.get_bytes(key) is None  # quarantines the garbage
        assert store.quarantined == MAX_QUARANTINE_FILES + extra
        assert len(_corrupt_files(tmp_path)) == MAX_QUARANTINE_FILES
        stats = store.stats()
        assert stats["quarantine_files"] == MAX_QUARANTINE_FILES
        assert stats["quarantine_bytes"] == MAX_QUARANTINE_FILES * len(garbage)

    def test_quarantine_pruned_during_eviction(self, tmp_path):
        payload = b"x" * 4_000
        store = ResultStore(tmp_path, max_bytes=20_000)
        for index in range(MAX_QUARANTINE_FILES + 3):
            (tmp_path / f"stale{index}{ENTRY_SUFFIX}{QUARANTINE_SUFFIX}").write_bytes(b"junk")
        for index in range(8):  # push past the bound so eviction runs
            store.put_bytes(_fake_key(f"e{index}"), payload)
        assert len(_corrupt_files(tmp_path)) <= MAX_QUARANTINE_FILES

    def test_eviction_respects_collective_bound_across_siblings(self, tmp_path):
        # two sibling processes (instances) alternate writes; neither one's
        # own index ever reaches the bound, so only directory-aware eviction
        # can keep the *collective* occupancy inside max_bytes
        payload = b"x" * 10_000
        bound = 62_000
        a = ResultStore(tmp_path, max_bytes=bound)
        b = ResultStore(tmp_path, max_bytes=bound)
        for turn in range(8):
            (a if turn % 2 == 0 else b).put_bytes(_fake_key(f"s{turn}"), payload)
        assert _entry_bytes(tmp_path) <= bound
        assert a.total_bytes() <= bound and b.total_bytes() <= bound


#: One writer process sharing a store directory with a sibling: writes the
#: shared keys (same deterministic payload per key in both processes) plus a
#: few of its own, read-verifying as it goes.  Any torn or foreign payload
#: asserts; the quarantine counter is printed for the parent to check.
_WRITER_SCRIPT = """
import sys
from repro.service import ResultStore

directory, max_bytes, who = sys.argv[1], int(sys.argv[2]), sys.argv[3]
store = ResultStore(directory, max_bytes=max_bytes)

def fake_key(tag):
    return ("config-" + tag, "single", ("workload-" + tag,), None, True)

def payload_for(key):
    return (key[0].encode() + b".") * 4096

shared = [fake_key("shared%d" % index) for index in range(4)]
own = [fake_key("%s-%d" % (who, index)) for index in range(3)]
for _round in range(25):
    for key in shared + own:
        store.put_bytes(key, payload_for(key))
    for key in shared:
        blob = store.get_bytes(key)
        assert blob is None or blob == payload_for(key), "torn or foreign payload"
print(store.stats()["quarantined"])
"""


class TestTrueMultiProcessSharing:
    def test_two_processes_share_one_directory(self, tmp_path):
        # two *real* processes hammer one directory with concurrent
        # put_bytes of the same and different keys, under an eviction bound
        # tight enough that both evict constantly.  After both settle: no
        # valid write was quarantined, no tmp file was stranded, and the
        # directory respects the collective size bound.
        max_bytes = 200_000
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), str(max_bytes), who],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env={**os.environ, "PYTHONPATH": "src"},
                cwd=Path(__file__).resolve().parent.parent,
            )
            for who in ("alpha", "beta")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "0", f"valid writes were quarantined: {out!r}"
        assert _tmp_files(tmp_path) == []
        assert _corrupt_files(tmp_path) == []
        # collective bound: at most one entry of slack past max_bytes
        one_entry = len((b"config-shared0" + b".") * 4096) + 1024
        assert _entry_bytes(tmp_path) <= max_bytes + one_entry
