"""Property-based tests on simulator-wide invariants.

These use hypothesis to generate many small synthetic workloads and machine
configurations and check the invariants that must hold for *any* simulation:
conservation of instruction counts, resource-bound lower limits on execution
time, monotonicity in memory latency, and metric ranges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.ideal import IdealMachineModel
from repro.core.multithreaded import MultithreadedSimulator
from repro.core.reference import ReferenceSimulator
from repro.workloads.generator import LoopSpec, WorkloadSpec, build_workload
from repro.workloads.kernels import kernel_names
from repro.workloads.stats import measure_program

workload_strategy = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    vector_instructions=st.integers(min_value=30, max_value=200),
    scalar_instructions=st.integers(min_value=20, max_value=200),
    loops=st.tuples(
        st.builds(
            LoopSpec,
            kernel=st.sampled_from(sorted(kernel_names())),
            vl=st.integers(min_value=2, max_value=128),
            weight=st.just(1.0),
            stride=st.sampled_from([1, 2, 8]),
        )
    ),
    scalar_loop_fraction=st.floats(min_value=0.0, max_value=0.8),
    outer_passes=st.integers(min_value=1, max_value=3),
)


class TestSimulationInvariants:
    @settings(max_examples=12, deadline=None)
    @given(spec=workload_strategy, latency=st.sampled_from([1, 25, 80]))
    def test_reference_run_conserves_work(self, spec, latency):
        program = build_workload(spec)
        stats = measure_program(program)
        result = ReferenceSimulator(MachineConfig.reference(latency)).run(program)
        # every dynamic instruction is dispatched exactly once
        assert result.instructions == stats.total_instructions
        assert result.stats.vector_instructions == stats.vector_instructions
        assert result.stats.memory_transactions == stats.memory_transactions
        # metrics stay in their definitional ranges
        assert 0.0 <= result.memory_port_occupancy <= 1.0
        assert 0.0 <= result.vopc <= 2.0
        assert result.stats.instructions_per_cycle <= 1.0 + 1e-9

    @settings(max_examples=12, deadline=None)
    @given(spec=workload_strategy, latency=st.sampled_from([1, 25, 80]))
    def test_execution_time_respects_resource_bounds(self, spec, latency):
        program = build_workload(spec)
        result = ReferenceSimulator(MachineConfig.reference(latency)).run(program)
        bound = IdealMachineModel().bound_for_programs([program])
        # ``cycles`` stops at the last decode slot; a trailing vector store
        # still drains on the address bus afterwards, so the resource bounds
        # apply to the drain-inclusive completion time.
        assert result.completion_cycles >= bound
        assert result.completion_cycles >= result.cycles

    @settings(max_examples=8, deadline=None)
    @given(spec=workload_strategy)
    def test_latency_monotonicity(self, spec):
        """Longer memory latency never makes the reference machine faster."""
        program = build_workload(spec)
        fast = ReferenceSimulator(MachineConfig.reference(1)).run(program)
        slow = ReferenceSimulator(MachineConfig.reference(100)).run(program)
        assert slow.cycles >= fast.cycles

    @settings(max_examples=6, deadline=None)
    @given(spec=workload_strategy)
    def test_multithreading_never_slows_fixed_work(self, spec):
        """Running the same two programs on 2 contexts beats running them back to back."""
        program = build_workload(spec)
        single = ReferenceSimulator(MachineConfig.reference(50)).run(program)
        queued = MultithreadedSimulator(MachineConfig.multithreaded(2, 50)).run_job_queue(
            [program, program]
        )
        sequential = 2 * single.cycles
        assert queued.cycles <= sequential * 1.02

    @settings(max_examples=6, deadline=None)
    @given(spec=workload_strategy, latency=st.sampled_from([1, 50]))
    def test_fu_state_breakdown_partitions_time(self, spec, latency):
        program = build_workload(spec)
        result = ReferenceSimulator(MachineConfig.reference(latency)).run(program)
        breakdown = result.fu_state_breakdown()
        assert sum(breakdown.values()) == result.cycles
