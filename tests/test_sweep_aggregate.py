"""Tests for the statistical aggregator: distributions, repetition groups,
metric resolution and pivot tables."""

from __future__ import annotations

import pytest

from repro.api import Machine
from repro.errors import SweepError
from repro.sweep import (
    MetricsSpec,
    Repetitions,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    aggregate_run,
    compile_sweep,
    distribution,
    execute_sweep,
    metric_value,
    pivot_table,
)
from repro.workloads import build_benchmark

REQUEST = RequestTemplate(machine="reference", mode="single", scale=0.05)


def run_sweep_spec(**overrides):
    fields = {
        "name": "agg",
        "request": REQUEST,
        "axes": (
            SweepAxis(name="workload", values=("tomcatv",)),
            SweepAxis(name="memory_latency", values=(1, 50)),
        ),
        "metrics": MetricsSpec(select=("cycles",), percentiles=(50.0,)),
    }
    fields.update(overrides)
    spec = SweepSpec(**fields)
    return execute_sweep(compile_sweep(spec))


class TestDistribution:
    def test_known_sample(self):
        stats = distribution([4.0, 1.0, 3.0, 2.0], percentiles=(50.0, 100.0))
        assert stats["n"] == 4
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["p50"] == 2.5
        assert stats["p100"] == 4.0
        assert stats["stdev"] == pytest.approx(1.2909944, rel=1e-6)

    def test_single_value_sample(self):
        stats = distribution([7.0], percentiles=(90.0,))
        assert stats["stdev"] == 0.0
        assert stats["p90"] == 7.0

    def test_percentile_interpolates(self):
        stats = distribution([0.0, 10.0], percentiles=(25.0,))
        assert stats["p25"] == 2.5

    def test_empty_sample_raises(self):
        with pytest.raises(SweepError, match="empty sample"):
            distribution([])


class TestMetricValue:
    @pytest.fixture(scope="class")
    def result(self):
        return Machine.named("reference").run(build_benchmark("tomcatv", scale=0.05))

    def test_headline_properties(self, result):
        assert metric_value(result, "cycles") == float(result.cycles)
        assert metric_value(result, "vopc") == pytest.approx(result.vopc)

    def test_counter_fallback(self, result):
        counters = result.counters()
        name = sorted(counters)[0]
        assert metric_value(result, name) == float(counters[name])

    def test_unknown_metric_raises_with_suggestions(self, result):
        with pytest.raises(SweepError, match="unknown metric"):
            metric_value(result, "bogus_metric")


class TestAggregateRun:
    def test_groups_by_repetition(self):
        run = run_sweep_spec(repetitions=Repetitions(count=3))
        rows = aggregate_run(run)
        assert len(rows) == 2  # two latencies; reps collapse into groups
        for row in rows:
            assert row.n == 3
            assert row.failed == 0
            assert row.metrics["cycles"]["stdev"] == 0.0  # deterministic engine
            assert "p50" in row.metrics["cycles"]

    def test_row_label_and_stat_accessor(self):
        rows = aggregate_run(run_sweep_spec())
        labels = {row.label for row in rows}
        assert labels == {"memory_latency=1", "memory_latency=50"}
        row = rows[0]
        assert row.stat("cycles") == row.metrics["cycles"]["mean"]
        with pytest.raises(SweepError, match="has no"):
            row.stat("cycles", "p99")

    def test_failed_points_counted_not_aggregated(self):
        run = run_sweep_spec(
            axes=(
                SweepAxis(name="machine", values=("reference", "no-such-machine")),
                SweepAxis(name="workload", values=("tomcatv",)),
            ),
            request=RequestTemplate(mode="single", scale=0.05),
        )
        rows = aggregate_run(run)
        by_machine = {row.params["machine"]: row for row in rows}
        assert by_machine["reference"].n == 1
        assert by_machine["no-such-machine"].n == 0
        assert by_machine["no-such-machine"].failed == 1
        assert "cycles" not in by_machine["no-such-machine"].metrics

    def test_metric_override(self):
        run = run_sweep_spec()
        rows = aggregate_run(run, metrics=("instructions",), percentiles=())
        assert set(rows[0].metrics) == {"instructions"}
        assert "p50" not in rows[0].metrics["instructions"]


class TestPivot:
    def test_cross_tabulation(self):
        run = run_sweep_spec(
            axes=(
                SweepAxis(name="workload", values=("tomcatv", "swm256")),
                SweepAxis(name="memory_latency", values=(1, 50)),
            )
        )
        rows = aggregate_run(run)
        table = pivot_table(rows, index="workload", columns="memory_latency", metric="cycles")
        assert set(table["index"]) == {"tomcatv", "swm256"}
        assert table["columns"] == [1, 50]
        assert len(table["cells"]) == 4
        assert all(value > 0 for value in table["cells"].values())

    def test_ambiguous_cell_raises(self):
        run = run_sweep_spec(
            axes=(
                SweepAxis(name="workload", values=("tomcatv", "swm256")),
                SweepAxis(name="memory_latency", values=(1, 50)),
            )
        )
        rows = aggregate_run(run)
        for row in rows:
            row.params["constant"] = 1  # collapse every group onto one cell
        with pytest.raises(SweepError, match="ambiguous"):
            pivot_table(rows, index="constant", columns="constant", metric="cycles")

    def test_missing_parameters_skipped(self):
        rows = aggregate_run(run_sweep_spec())
        table = pivot_table(rows, index="nope", columns="memory_latency", metric="cycles")
        assert table["cells"] == {}
