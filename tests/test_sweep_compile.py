"""Tests for the sweep compiler: grid expansion, perturbations, repetitions,
derived parameters, deduplication and stable point identity."""

from __future__ import annotations

import pytest

from repro.errors import SweepError
from repro.sweep import (
    DerivedParam,
    PerturbationRule,
    Repetitions,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    ZipGroup,
    compile_sweep,
    derive_seed,
)

REQUEST = RequestTemplate(machine="reference", mode="single", scale=0.05)


def spec_with(**overrides) -> SweepSpec:
    fields = {
        "name": "unit",
        "request": REQUEST,
        "axes": (
            SweepAxis(name="workload", values=("tomcatv",)),
            SweepAxis(name="memory_latency", values=(1, 50)),
        ),
    }
    fields.update(overrides)
    return SweepSpec(**fields)


class TestGrid:
    def test_cartesian_product(self):
        compiled = compile_sweep(
            spec_with(
                axes=(
                    SweepAxis(name="workload", values=("tomcatv", "swm256")),
                    SweepAxis(name="memory_latency", values=(1, 50, 100)),
                )
            )
        )
        assert len(compiled) == 6
        assert compiled.duplicates == 0
        latencies = {p.params["memory_latency"] for p in compiled.points}
        assert latencies == {1, 50, 100}

    def test_zip_group_advances_together(self):
        compiled = compile_sweep(
            spec_with(
                axes=(SweepAxis(name="workload", values=("tomcatv",)),),
                zips=(
                    ZipGroup(
                        names=("machine", "memory_latency"),
                        rows=(("reference", 1), ("multithreaded-2", 50)),
                    ),
                ),
            )
        )
        assert len(compiled) == 2
        pairs = {(p.params["machine"], p.params["memory_latency"]) for p in compiled.points}
        assert pairs == {("reference", 1), ("multithreaded-2", 50)}

    def test_duplicate_points_collapse(self):
        compiled = compile_sweep(
            spec_with(
                axes=(
                    SweepAxis(name="workload", values=("tomcatv",)),
                    SweepAxis(name="memory_latency", values=(1, 1, 50)),
                )
            )
        )
        assert len(compiled) == 2
        assert compiled.duplicates == 1

    def test_point_ids_stable_across_compiles(self):
        first = compile_sweep(spec_with())
        second = compile_sweep(spec_with())
        assert [p.point_id for p in first.points] == [p.point_id for p in second.points]
        assert all(p.point_id.startswith("pt-") for p in first.points)

    def test_labels_show_only_varying_parameters(self):
        compiled = compile_sweep(spec_with())
        # 'workload' has a single value: only memory_latency varies
        assert [p.label for p in compiled.points] == [
            "memory_latency=1",
            "memory_latency=50",
        ]


class TestPerturbations:
    def test_deltas_emit_base_plus_variants(self):
        compiled = compile_sweep(
            spec_with(
                perturbations=(PerturbationRule(key="memory_latency", deltas=(10,)),)
            )
        )
        # 2 base points, each re-emitted once perturbed
        assert len(compiled) == 4
        perturbs = sorted(p.params["perturb"] for p in compiled.points)
        assert perturbs == ["base", "base", "memory_latency+10", "memory_latency+10"]

    def test_values_variant_labels(self):
        compiled = compile_sweep(
            spec_with(
                axes=(
                    SweepAxis(name="workload", values=("tomcatv",)),
                    SweepAxis(name="memory_latency", values=(1,)),
                ),
                perturbations=(PerturbationRule(key="memory_latency", values=(99,)),),
            )
        )
        assert {p.params["perturb"] for p in compiled.points} == {
            "base",
            "memory_latency=99",
        }

    def test_missing_key_raises(self):
        with pytest.raises(SweepError, match="unknown parameter 'crossbar'"):
            compile_sweep(
                spec_with(perturbations=(PerturbationRule(key="crossbar", deltas=(1,)),))
            )

    def test_non_numeric_base_raises(self):
        with pytest.raises(SweepError, match="numeric base"):
            compile_sweep(
                spec_with(perturbations=(PerturbationRule(key="workload", deltas=(1,)),))
            )


class TestRepetitions:
    def test_rep_and_seed_stamped(self):
        compiled = compile_sweep(spec_with(repetitions=Repetitions(count=3, base_seed=11)))
        assert len(compiled) == 6
        reps = sorted(p.params["rep"] for p in compiled.points)
        assert reps == [0, 0, 1, 1, 2, 2]
        assert all(isinstance(p.params["seed"], int) for p in compiled.points)

    def test_seeds_deterministic_and_distinct(self):
        first = compile_sweep(spec_with(repetitions=Repetitions(count=2, base_seed=5)))
        second = compile_sweep(spec_with(repetitions=Repetitions(count=2, base_seed=5)))
        assert [p.params["seed"] for p in first.points] == [
            p.params["seed"] for p in second.points
        ]
        seeds = {p.params["seed"] for p in first.points}
        assert len(seeds) == len(first.points)  # distinct per (point, rep)
        shifted = compile_sweep(spec_with(repetitions=Repetitions(count=2, base_seed=6)))
        assert {p.params["seed"] for p in shifted.points}.isdisjoint(seeds)

    def test_derive_seed_is_pure(self):
        assert derive_seed(1, "x", 0) == derive_seed(1, "x", 0)
        assert derive_seed(1, "x", 0) != derive_seed(1, "x", 1)
        assert derive_seed(1, "x", 0) != derive_seed(2, "x", 0)

    def test_single_repetition_stamps_nothing(self):
        compiled = compile_sweep(spec_with())
        assert all("rep" not in p.params and "seed" not in p.params for p in compiled.points)

    def test_group_params_strip_repetition_identity(self):
        compiled = compile_sweep(spec_with(repetitions=Repetitions(count=2)))
        groups = {tuple(sorted(p.group_params().items())) for p in compiled.points}
        assert len(groups) == 2  # two latencies, reps collapse


class TestDerived:
    def test_expression_sees_parameters_and_helpers(self):
        compiled = compile_sweep(
            spec_with(
                derived=(DerivedParam(name="half", expression="max(1, memory_latency // 2)"),),
                request=RequestTemplate(
                    machine="reference", mode="single", scale=0.05,
                    exclude_options=("half",),
                ),
            )
        )
        halves = {p.params["memory_latency"]: p.params["half"] for p in compiled.points}
        assert halves == {1: 1, 50: 25}

    def test_failing_expression_raises(self):
        with pytest.raises(SweepError, match="failed to evaluate"):
            compile_sweep(spec_with(derived=(DerivedParam(name="x", expression="nope + 1"),)))

    def test_non_scalar_result_raises(self):
        with pytest.raises(SweepError, match="scalar"):
            compile_sweep(
                spec_with(derived=(DerivedParam(name="x", expression="[memory_latency]"),))
            )

    def test_builtins_are_unreachable(self):
        with pytest.raises(SweepError, match="failed to evaluate"):
            compile_sweep(
                spec_with(derived=(DerivedParam(name="x", expression="open('/etc/passwd')"),))
            )


class TestRequestConstruction:
    def test_reserved_params_do_not_become_options(self):
        compiled = compile_sweep(spec_with())
        for point in compiled.points:
            options = dict(point.request.options)
            assert "workload" not in options
            assert options["memory_latency"] == point.params["memory_latency"]

    def test_exclude_options_respected(self):
        compiled = compile_sweep(
            spec_with(
                axes=(
                    SweepAxis(name="workload", values=("tomcatv",)),
                    SweepAxis(name="memory_latency", values=(1,)),
                    SweepAxis(name="note", values=("a",)),
                ),
                request=RequestTemplate(
                    machine="reference", mode="single", scale=0.05,
                    exclude_options=("note",),
                ),
            )
        )
        assert dict(compiled.points[0].request.options) == {"memory_latency": 1}

    def test_workload_axis_fills_default_template(self):
        compiled = compile_sweep(spec_with())
        request = compiled.points[0].request
        assert len(request.workloads) == 1
        assert request.workloads[0].name == "tomcatv"

    def test_scale_applied_to_named_workloads(self):
        compiled = compile_sweep(spec_with())
        # scale 0.05 must shrink the benchmark far below full size
        full = compile_sweep(
            spec_with(request=RequestTemplate(machine="reference", mode="single"))
        )
        small = compiled.points[0].request.workloads[0]
        big = full.points[0].request.workloads[0]
        assert small.dynamic_instruction_count < big.dynamic_instruction_count

    def test_missing_machine_raises(self):
        with pytest.raises(SweepError, match="resolves no machine"):
            compile_sweep(spec_with(request=RequestTemplate(mode="single", scale=0.05)))

    def test_missing_workloads_raise(self):
        with pytest.raises(SweepError, match="declares no workloads"):
            compile_sweep(
                spec_with(axes=(SweepAxis(name="memory_latency", values=(1,)),))
            )

    def test_unknown_benchmark_fails_at_compile(self):
        with pytest.raises(SweepError, match="cannot be compiled"):
            compile_sweep(
                spec_with(axes=(SweepAxis(name="workload", values=("no-such-benchmark",)),))
            )

    def test_template_placeholder_substitution(self):
        compiled = compile_sweep(
            spec_with(
                axes=(SweepAxis(name="bench", values=("tomcatv", "swm256")),),
                request=RequestTemplate(
                    machine="reference", mode="single", scale=0.05,
                    workloads=("{bench}",), exclude_options=("bench",),
                ),
            )
        )
        assert sorted(p.request.workloads[0].name for p in compiled.points) == [
            "swm256",
            "tomcatv",
        ]

    def test_unknown_template_placeholder_raises(self):
        with pytest.raises(SweepError, match="unknown"):
            compile_sweep(
                spec_with(
                    request=RequestTemplate(
                        machine="reference", mode="single", scale=0.05,
                        workloads=("{missing} extra",),
                    )
                )
            )

    def test_queue_mode_bundles_every_workload(self):
        compiled = compile_sweep(
            spec_with(
                axes=(SweepAxis(name="memory_latency", values=(1,)),),
                request=RequestTemplate(
                    machine="multithreaded-2", mode="queue", scale=0.05,
                    workloads=("tomcatv", "swm256"),
                ),
            )
        )
        assert len(compiled) == 1
        assert compiled.points[0].request.mode == "queue"
        assert len(compiled.points[0].request.workloads) == 2
