"""Tests for the sweep executor: local fan-out, dedup, caching and
per-point failure isolation."""

from __future__ import annotations

import pytest

from repro.api.cache import RunCache
from repro.errors import SweepError
from repro.service import ResultStore
from repro.sweep import (
    Repetitions,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    compile_sweep,
    execute_sweep,
)

REQUEST = RequestTemplate(machine="reference", mode="single", scale=0.05)


def compiled_sweep(**overrides):
    fields = {
        "name": "exec",
        "request": REQUEST,
        "axes": (
            SweepAxis(name="workload", values=("tomcatv",)),
            SweepAxis(name="memory_latency", values=(1, 50)),
        ),
    }
    fields.update(overrides)
    return compile_sweep(SweepSpec(**fields))


class TestLocalExecution:
    def test_serial_run_completes_every_point(self):
        run = execute_sweep(compiled_sweep())
        assert run.via == "local"
        assert run.counts() == {"points": 2, "failed": 0, "executed": 2}
        for outcome in run.outcomes:
            assert outcome.result().cycles > 0
            assert len(outcome.result_sha256()) == 64

    def test_parallel_matches_serial(self):
        serial = execute_sweep(compiled_sweep())
        parallel = execute_sweep(compiled_sweep(), jobs=2)
        assert [o.payload for o in serial.outcomes] == [o.payload for o in parallel.outcomes]

    def test_jobs_must_be_positive(self):
        with pytest.raises(SweepError, match="at least 1"):
            execute_sweep(compiled_sweep(), jobs=0)

    def test_progress_streams_every_point(self):
        seen = []
        run = execute_sweep(
            compiled_sweep(),
            progress=lambda outcome, completed, total: seen.append(
                (outcome.point.point_id, completed, total)
            ),
        )
        assert len(seen) == len(run.outcomes) == 2
        assert [completed for _, completed, _ in seen] == [1, 2]
        assert all(total == 2 for _, _, total in seen)


class TestDeduplication:
    def test_identical_repetitions_execute_once(self):
        # the simulator is deterministic and the seed feeds nothing, so the
        # two repetitions of each point hash to the same request
        run = execute_sweep(compiled_sweep(repetitions=Repetitions(count=2)))
        counts = run.counts()
        assert counts == {"points": 4, "failed": 0, "executed": 2, "deduplicated": 2}
        by_group: dict[str, list[bytes]] = {}
        for outcome in run.outcomes:
            key = str(sorted(outcome.point.group_params().items()))
            by_group.setdefault(key, []).append(outcome.payload)
        for payloads in by_group.values():
            assert payloads[0] == payloads[1]  # byte-identical shared payloads


class TestFailureIsolation:
    def test_unknown_machine_fails_alone(self):
        run = execute_sweep(
            compiled_sweep(
                axes=(
                    SweepAxis(name="machine", values=("reference", "no-such-machine")),
                    SweepAxis(name="workload", values=("tomcatv",)),
                ),
                request=RequestTemplate(mode="single", scale=0.05),
            )
        )
        counts = run.counts()
        assert counts["failed"] == 1 and counts["executed"] == 1
        (failure,) = run.failures()
        assert failure.point.params["machine"] == "no-such-machine"
        assert "no-such-machine" in failure.error
        assert failure.result() is None and failure.result_sha256() is None

    def test_bad_option_fails_alone(self):
        run = execute_sweep(
            compiled_sweep(
                axes=(
                    SweepAxis(name="workload", values=("tomcatv",)),
                    SweepAxis(name="scheduler", values=("unfair", "nope")),
                ),
                request=RequestTemplate(machine="multithreaded-2", mode="single", scale=0.05),
            )
        )
        assert run.counts()["failed"] == 1
        assert "nope" in run.failures()[0].error

    def test_parallel_run_isolates_failures_too(self):
        run = execute_sweep(
            compiled_sweep(
                axes=(
                    SweepAxis(name="machine", values=("reference", "no-such-machine")),
                    SweepAxis(name="workload", values=("tomcatv", "swm256")),
                ),
                request=RequestTemplate(mode="single", scale=0.05),
            ),
            jobs=2,
        )
        counts = run.counts()
        assert counts["failed"] == 2 and counts["executed"] == 2


class TestCaching:
    def test_result_store_warm_run_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = execute_sweep(compiled_sweep(), cache=store)
        assert cold.counts()["executed"] == 2
        warm = execute_sweep(compiled_sweep(), cache=store)
        assert warm.counts() == {"points": 2, "failed": 0, "store": 2}
        # stored payloads are byte-identical to the cold run's
        assert [o.payload for o in warm.outcomes] == [o.payload for o in cold.outcomes]

    def test_run_cache_object_interface(self):
        cache = RunCache()
        cold = execute_sweep(compiled_sweep(), cache=cache)
        warm = execute_sweep(compiled_sweep(), cache=cache)
        assert warm.counts()["store"] == 2
        assert [o.result().cycles for o in warm.outcomes] == [
            o.result().cycles for o in cold.outcomes
        ]
