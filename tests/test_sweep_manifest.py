"""Tests for the manifest writer: sweep.json, the SHA-256 ledger and the
human-readable summary — and the acceptance criterion that a warm re-run
produces a byte-identical ledger."""

from __future__ import annotations

import json

import pytest

from repro.service import ResultStore
from repro.sweep import (
    MetricsSpec,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    aggregate_run,
    compile_sweep,
    execute_sweep,
    ledger_entries,
    render_summary,
    run_sweep,
    sweep_manifest,
    write_manifest,
)

SPEC = SweepSpec(
    name="manifest-check",
    description="two latencies, one benchmark",
    request=RequestTemplate(machine="reference", mode="single", scale=0.05),
    axes=(
        SweepAxis(name="workload", values=("tomcatv",)),
        SweepAxis(name="memory_latency", values=(1, 50)),
    ),
    metrics=MetricsSpec(select=("cycles",), percentiles=(50.0,)),
)


@pytest.fixture(scope="module")
def executed():
    run = execute_sweep(compile_sweep(SPEC))
    return run, aggregate_run(run)


class TestManifestDocument:
    def test_ledger_entry_shape(self, executed):
        run, _ = executed
        entries = ledger_entries(run)
        assert len(entries) == 2
        for entry in entries:
            assert entry["point"].startswith("pt-")
            assert entry["status"] == "done"
            assert entry["served_from"] == "executed"
            assert len(entry["result_sha256"]) == 64
            assert entry["error"] is None

    def test_document_is_timestamp_free(self, executed):
        run, rows = executed
        document = sweep_manifest(run, rows)
        text = json.dumps(document)
        assert "elapsed" not in text and "time" not in text.lower()
        assert document["sweep"] == "manifest-check"
        assert document["counts"]["points"] == 2
        assert len(document["aggregates"]) == 2

    def test_summary_renders_counts_and_tables(self, executed):
        run, rows = executed
        summary = render_summary(run, rows)
        assert "# Sweep: manifest-check" in summary
        assert "points: **2**" in summary
        assert "## cycles" in summary
        assert "memory_latency=1" in summary
        assert "Failures" not in summary

    def test_summary_lists_failures(self):
        spec = SweepSpec(
            name="partial",
            request=RequestTemplate(mode="single", scale=0.05),
            axes=(
                SweepAxis(name="machine", values=("reference", "no-such-machine")),
                SweepAxis(name="workload", values=("tomcatv",)),
            ),
        )
        run = execute_sweep(compile_sweep(spec))
        summary = render_summary(run, aggregate_run(run))
        assert "## Failures" in summary
        assert "no-such-machine" in summary


class TestWrittenArtifacts:
    def test_three_files_written(self, executed, tmp_path):
        run, rows = executed
        paths = write_manifest(run, rows, tmp_path / "out")
        assert set(paths) == {"sweep", "ledger", "summary"}
        document = json.loads((tmp_path / "out" / "sweep.json").read_text())
        assert document["manifest_version"] == 1
        ledger = (tmp_path / "out" / "ledger.sha256").read_text().splitlines()
        assert len(ledger) == 2
        for line in ledger:
            digest, point_id = line.split()
            assert len(digest) == 64 and point_id.startswith("pt-")

    def test_failed_points_ledger_placeholder(self, tmp_path):
        spec = SweepSpec(
            name="partial",
            request=RequestTemplate(mode="single", scale=0.05),
            axes=(
                SweepAxis(name="machine", values=("no-such-machine",)),
                SweepAxis(name="workload", values=("tomcatv",)),
            ),
        )
        run = execute_sweep(compile_sweep(spec))
        write_manifest(run, aggregate_run(run), tmp_path)
        ledger = (tmp_path / "ledger.sha256").read_text()
        assert ledger.startswith("-" * 64)

    def test_warm_rerun_ledger_is_byte_identical(self, tmp_path):
        """Acceptance criterion: warm re-run via the store reports hits and
        reproduces sweep.json's ledger byte for byte."""
        store = ResultStore(tmp_path / "store")
        cold = run_sweep(SPEC, cache=store, out_dir=tmp_path / "cold")
        assert cold.run.counts()["executed"] == 2
        warm = run_sweep(SPEC, cache=store, out_dir=tmp_path / "warm")
        assert warm.run.counts()["store"] == 2  # 100% store hits
        cold_ledger = (tmp_path / "cold" / "ledger.sha256").read_bytes()
        warm_ledger = (tmp_path / "warm" / "ledger.sha256").read_bytes()
        assert cold_ledger == warm_ledger
        # the full manifest differs only in how points were served
        cold_doc = json.loads((tmp_path / "cold" / "sweep.json").read_text())
        warm_doc = json.loads((tmp_path / "warm" / "sweep.json").read_text())
        assert cold_doc["aggregates"] == warm_doc["aggregates"]
        assert [e["result_sha256"] for e in cold_doc["ledger"]] == [
            e["result_sha256"] for e in warm_doc["ledger"]
        ]


class TestRunSweepOrchestration:
    def test_spec_object_path(self, tmp_path):
        output = run_sweep(SPEC, out_dir=tmp_path)
        assert output.failed == 0
        assert output.rows and output.artifacts
        assert (tmp_path / "SUMMARY.md").exists()

    def test_spec_file_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "sweep": {"name": "from-file"},
                    "request": {"machine": "reference", "mode": "single", "scale": 0.05},
                    "axes": {"workload": ["tomcatv"], "memory_latency": [1]},
                }
            )
        )
        output = run_sweep(path)
        assert output.compiled.spec.name == "from-file"
        assert output.failed == 0
        assert output.artifacts == {}
