"""Sweep execution through a running service: equivalence with the local
path, warm-run store hits and ledger stability — the CI smoke criteria."""

from __future__ import annotations

import pytest

from repro.service import ResultStore, ServiceClient, ServiceServer, SimulationService
from repro.sweep import (
    MetricsSpec,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    compile_sweep,
    execute_sweep,
    ledger_entries,
    run_sweep,
)

SPEC = SweepSpec(
    name="service-sweep",
    request=RequestTemplate(machine="reference", mode="single", scale=0.05),
    axes=(
        SweepAxis(name="workload", values=("tomcatv", "dyfesm")),
        SweepAxis(name="memory_latency", values=(1, 50)),
    ),
    metrics=MetricsSpec(select=("cycles",), percentiles=(50.0,)),
)


@pytest.fixture(scope="module")
def service_url(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("sweep-store"))
    service = SimulationService(store=store, workers=2)
    with ServiceServer(service, port=0) as server:
        yield server.url


class TestSweepViaService:
    def test_cold_run_executes_and_reports_endpoint(self, service_url):
        client = ServiceClient(service_url)
        run = execute_sweep(compile_sweep(SPEC), client=client)
        assert run.via == service_url
        counts = run.counts()
        assert counts["points"] == 4 and counts["failed"] == 0
        assert counts.get("executed", 0) + counts.get("coalesced", 0) == 4

    def test_warm_run_is_store_hits_with_identical_ledger(self, service_url):
        client = ServiceClient(service_url)
        warm = execute_sweep(compile_sweep(SPEC), client=client)
        counts = warm.counts()
        # acceptance criterion: >= 90% of points answered by the store
        assert counts.get("store", 0) >= 0.9 * counts["points"]
        # and the result hashes agree with a fresh local execution
        local = execute_sweep(compile_sweep(SPEC))
        assert [e["result_sha256"] for e in ledger_entries(warm)] == [
            e["result_sha256"] for e in ledger_entries(local)
        ]

    def test_service_failures_isolated_per_point(self, service_url):
        spec = SweepSpec(
            name="partial",
            request=RequestTemplate(mode="single", scale=0.05),
            axes=(
                SweepAxis(name="machine", values=("reference", "no-such-machine")),
                SweepAxis(name="workload", values=("tomcatv",)),
            ),
        )
        run = execute_sweep(compile_sweep(spec), client=ServiceClient(service_url))
        counts = run.counts()
        assert counts["failed"] == 1
        assert counts.get("executed", 0) + counts.get("store", 0) == 1
        assert "no-such-machine" in run.failures()[0].error

    def test_run_sweep_via_service_writes_manifest(self, service_url, tmp_path):
        output = run_sweep(SPEC, client=ServiceClient(service_url), out_dir=tmp_path)
        assert output.failed == 0
        assert (tmp_path / "ledger.sha256").exists()
        assert output.run.via == service_url

    def test_dead_service_fails_points_not_sweep(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.3, retries=0)
        run = execute_sweep(compile_sweep(SPEC), client=client)
        counts = run.counts()
        assert counts["failed"] == counts["points"] == 4
        assert all("cannot reach" in outcome.error for outcome in run.failures())


class TestServiceRetries:
    class _FlakyClient:
        """Stub client: every point's first submission is shed, retries work."""

        base_url = "stub://flaky"

        def __init__(self, payload: bytes) -> None:
            self.payload = payload
            self.attempts: dict[str, int] = {}

        def submit_request(self, request, priority=0, **_kwargs):
            from repro.service import ServiceError

            key = repr(request.cache_key())
            self.attempts[key] = self.attempts.get(key, 0) + 1
            if self.attempts[key] == 1:
                raise ServiceError("HTTP 429: shed", status=429)
            outer = self

            class _Handle:
                served_from = "executed"
                job_id = key

                def result_bytes(self, timeout=None):
                    return outer.payload

            return _Handle()

    def test_failed_points_are_resubmitted(self):
        import pickle

        payload = pickle.dumps("stand-in result")
        flaky = self._FlakyClient(payload)
        run = execute_sweep(
            compile_sweep(SPEC), client=flaky, service_retries=1
        )
        assert run.counts()["failed"] == 0
        assert all(outcome.payload == payload for outcome in run.outcomes)
        assert all(count == 2 for count in flaky.attempts.values())

    def test_without_retries_shed_points_stay_failed(self):
        import pickle

        flaky = self._FlakyClient(pickle.dumps("unused"))
        run = execute_sweep(
            compile_sweep(SPEC), client=flaky, service_retries=0
        )
        assert run.counts()["failed"] == run.counts()["points"]

    def test_negative_retries_rejected(self):
        from repro.errors import SweepError

        with pytest.raises(SweepError, match="service_retries"):
            execute_sweep(compile_sweep(SPEC), client=object(), service_retries=-1)
