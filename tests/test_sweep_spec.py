"""Tests for the sweep spec dataclasses, the TOML/JSON loader and the
bundled TOML-subset fallback parser."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import SweepError
from repro.sweep import (
    MetricsSpec,
    PerturbationRule,
    Repetitions,
    RequestTemplate,
    SweepAxis,
    SweepSpec,
    ZipGroup,
    load_sweep_spec,
    parse_sweep_spec,
    parse_toml,
)
from repro.sweep import _toml

EXAMPLES = sorted(Path(__file__).resolve().parent.parent.glob("examples/sweeps/*.toml"))


class TestDataclasses:
    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="no values"):
            SweepAxis(name="memory_latency", values=())

    def test_unnamed_axis_rejected(self):
        with pytest.raises(SweepError, match="non-empty"):
            SweepAxis(name="", values=(1,))

    def test_non_scalar_axis_value_rejected(self):
        with pytest.raises(SweepError, match="scalar"):
            SweepAxis(name="x", values=([1, 2],))

    def test_zip_group_row_length_mismatch(self):
        with pytest.raises(SweepError, match="2 values"):
            ZipGroup(names=("a", "b", "c"), rows=((1, 2),))

    def test_zip_group_needs_rows(self):
        with pytest.raises(SweepError, match="no rows"):
            ZipGroup(names=("a",), rows=())

    def test_repetitions_count_must_be_positive(self):
        with pytest.raises(SweepError, match=">= 1"):
            Repetitions(count=0)

    def test_perturbation_needs_exactly_one_of_deltas_values(self):
        with pytest.raises(SweepError, match="exactly one"):
            PerturbationRule(key="latency")
        with pytest.raises(SweepError, match="exactly one"):
            PerturbationRule(key="latency", deltas=(1,), values=(2,))
        assert PerturbationRule(key="latency", deltas=(1, -1)).deltas == (1, -1)

    def test_perturbation_deltas_must_be_numeric(self):
        with pytest.raises(SweepError, match="numbers"):
            PerturbationRule(key="latency", deltas=("big",))

    def test_request_mode_validated(self):
        with pytest.raises(SweepError, match="single/group/queue"):
            RequestTemplate(mode="parallel")

    def test_request_scale_positive(self):
        with pytest.raises(SweepError, match="positive"):
            RequestTemplate(scale=0.0)

    def test_metrics_need_a_selection(self):
        with pytest.raises(SweepError, match="at least one"):
            MetricsSpec(select=())

    def test_percentiles_bounded(self):
        with pytest.raises(SweepError, match=r"\[0, 100\]"):
            MetricsSpec(percentiles=(150.0,))

    def test_duplicate_parameter_declarations_rejected(self):
        axis = SweepAxis(name="memory_latency", values=(1, 2))
        with pytest.raises(SweepError, match="more than once"):
            SweepSpec(name="dup", axes=(axis, axis))

    def test_duplicate_across_axis_and_zip_rejected(self):
        with pytest.raises(SweepError, match="more than once"):
            SweepSpec(
                name="dup",
                axes=(SweepAxis(name="machine", values=("reference",)),),
                zips=(ZipGroup(names=("machine",), rows=(("ideal",),)),),
            )


class TestParsing:
    def test_minimal_document(self):
        spec = parse_sweep_spec({"sweep": {"name": "mini"}})
        assert spec.name == "mini"
        assert spec.repetitions.count == 1
        assert spec.metrics.select == ("cycles", "instructions")

    def test_unknown_section_rejected(self):
        with pytest.raises(SweepError, match="unknown sweep section"):
            parse_sweep_spec({"sweep": {"name": "x"}, "axis": {}})

    def test_unknown_request_field_rejected(self):
        with pytest.raises(SweepError, match=r"unknown \[request\] field"):
            parse_sweep_spec({"request": {"machina": "reference"}})

    def test_unknown_sweep_field_rejected(self):
        with pytest.raises(SweepError, match=r"unknown \[sweep\] field"):
            parse_sweep_spec({"sweep": {"name": "x", "author": "y"}})

    def test_unknown_metrics_and_repetitions_fields_rejected(self):
        with pytest.raises(SweepError, match=r"unknown \[metrics\] field"):
            parse_sweep_spec({"metrics": {"top": 3}})
        with pytest.raises(SweepError, match=r"unknown \[repetitions\] field"):
            parse_sweep_spec({"repetitions": {"n": 3}})

    def test_zip_columns_must_align(self):
        with pytest.raises(SweepError, match="mismatched lengths"):
            parse_sweep_spec({"zip": [{"a": [1, 2], "b": [1]}]})

    def test_zip_group_must_be_table(self):
        with pytest.raises(SweepError, match="non-empty table"):
            parse_sweep_spec({"zip": ["a"]})

    def test_perturb_rule_fields_validated(self):
        with pytest.raises(SweepError, match=r"unknown \[\[perturb\]\] field"):
            parse_sweep_spec({"perturb": [{"key": "x", "delta": 1}]})

    def test_document_must_be_mapping(self):
        with pytest.raises(SweepError, match="table/object"):
            parse_sweep_spec(["not", "a", "table"])

    def test_section_must_be_mapping(self):
        with pytest.raises(SweepError, match=r"\[axes\] must be a table"):
            parse_sweep_spec({"axes": [1, 2]})


class TestLoader:
    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "sweep": {"name": "from-json"},
                    "request": {"machine": "reference", "workloads": ["tomcatv"]},
                    "axes": {"memory_latency": [1, 50]},
                }
            )
        )
        spec = load_sweep_spec(path)
        assert spec.name == "from-json"
        assert spec.axes[0].values == (1, 50)

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SweepError, match="invalid JSON"):
            load_sweep_spec(path)

    def test_load_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[sweep\nname = oops")
        with pytest.raises(SweepError, match="invalid TOML"):
            load_sweep_spec(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read"):
            load_sweep_spec(tmp_path / "absent.toml")

    def test_default_name_is_file_stem(self, tmp_path):
        path = tmp_path / "latency_grid.toml"
        path.write_text('[axes]\nmemory_latency = [1]\n')
        assert load_sweep_spec(path).name == "latency_grid"

    @pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
    def test_bundled_examples_load(self, example):
        spec = load_sweep_spec(example)
        assert spec.name
        assert spec.metrics.select


class TestTomlFallback:
    """The 3.10 fallback parser must agree with tomllib where both run."""

    def test_scalars_arrays_tables(self):
        document = _toml.loads(
            "\n".join(
                [
                    "# a comment",
                    "[sweep]",
                    'name = "demo"  # trailing comment',
                    "count = 3",
                    "ratio = 0.5",
                    "flag = true",
                    "",
                    "[axes]",
                    "memory_latency = [1, 20,",
                    "    100]",
                    'machine = ["reference", "ideal"]',
                    "",
                    "[[perturb]]",
                    'key = "memory_latency"',
                    "deltas = [-10, 10]",
                ]
            )
        )
        assert document["sweep"] == {"name": "demo", "count": 3, "ratio": 0.5, "flag": True}
        assert document["axes"]["memory_latency"] == [1, 20, 100]
        assert document["perturb"] == [{"key": "memory_latency", "deltas": [-10, 10]}]

    def test_unsupported_syntax_raises(self):
        with pytest.raises(_toml.TomlFallbackError):
            _toml.loads("point = {x = 1, y = 2}")  # inline tables unsupported

    def test_bad_header_raises(self):
        with pytest.raises(_toml.TomlFallbackError):
            _toml.loads("[unclosed\n")

    def test_bare_line_raises(self):
        with pytest.raises(_toml.TomlFallbackError):
            _toml.loads("just some words\n")

    @pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
    def test_fallback_matches_tomllib_on_examples(self, example):
        tomllib = pytest.importorskip("tomllib")
        text = example.read_text()
        assert _toml.loads(text) == tomllib.loads(text)

    def test_parse_toml_entry_point(self):
        assert parse_toml('[sweep]\nname = "x"\n')["sweep"]["name"] == "x"
