"""Tests for the Dixie-substitute tracing pipeline (figure 2)."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace.dixie import Dixie, trace_program
from repro.trace.records import TraceSet
from repro.trace.stream import TraceStream, instructions_from_trace
from repro.workloads.stats import measure_program, measure_stream


class TestDixieInstrumentation:
    def test_trace_streams_have_expected_lengths(self, triad_program):
        trace = trace_program(triad_program)
        stats = measure_program(triad_program)
        assert len(trace.vl_trace) == stats.vector_instructions
        assert len(trace.memref_trace) == (
            stats.vector_memory_instructions + stats.scalar_memory_instructions
        )
        assert len(trace.stride_trace) == stats.vector_memory_instructions
        assert len(trace.block_trace) == sum(
            loop.iterations for loop in triad_program.loops
        )

    def test_trace_validates(self, triad_program):
        trace = trace_program(triad_program)
        trace.validate()  # must not raise

    def test_validation_catches_missing_vl_records(self, triad_program):
        trace = trace_program(triad_program)
        trace.vl_trace.pop()
        with pytest.raises(TraceError):
            trace.validate()

    def test_validation_catches_unknown_block(self, triad_program):
        trace = trace_program(triad_program)
        trace.block_trace.append(999)
        with pytest.raises(TraceError):
            trace.validate()

    def test_summary_counts(self, triad_program):
        trace = trace_program(triad_program)
        summary = trace.summary()
        assert summary.dynamic_instructions == triad_program.dynamic_instruction_count
        assert summary.dynamic_blocks == len(trace.block_trace)
        assert summary.as_dict()["vector_instructions"] == len(trace.vl_trace)

    def test_scalar_program_has_no_vector_records(self, scalar_program):
        trace = trace_program(scalar_program)
        assert trace.vl_trace == []
        assert trace.stride_trace == []
        assert len(trace.memref_trace) > 0


class TestTraceStreamReconstruction:
    def test_roundtrip_reproduces_exact_stream(self, triad_program):
        """Replaying the Dixie traces yields the identical dynamic instruction stream."""
        trace = trace_program(triad_program)
        original = list(triad_program.instructions())
        reconstructed = list(TraceStream(trace))
        assert reconstructed == original

    def test_roundtrip_for_every_loop_kind(self, small_dyfesm):
        trace = trace_program(small_dyfesm)
        original = list(small_dyfesm.instructions())
        reconstructed = list(instructions_from_trace(trace))
        assert reconstructed == original

    def test_stream_statistics_match_program(self, triad_program):
        trace = trace_program(triad_program)
        stream_stats = measure_stream(TraceStream(trace))
        program_stats = measure_program(triad_program)
        assert stream_stats.vector_operations == program_stats.vector_operations
        assert stream_stats.total_instructions == program_stats.total_instructions

    def test_len_matches(self, triad_program):
        trace = trace_program(triad_program)
        assert len(TraceStream(trace)) == triad_program.dynamic_instruction_count

    def test_truncated_vl_trace_raises(self, triad_program):
        trace = trace_program(triad_program)
        broken = TraceSet(
            program_name=trace.program_name,
            basic_blocks=trace.basic_blocks,
            block_trace=list(trace.block_trace),
            vl_trace=trace.vl_trace[:1],
            stride_trace=list(trace.stride_trace),
            memref_trace=list(trace.memref_trace),
        )
        with pytest.raises(TraceError):
            list(TraceStream(broken))

    def test_duplicate_block_ids_rejected(self, triad_program):
        blocks = trace_program(triad_program).basic_blocks
        with pytest.raises(TraceError):
            TraceSet(program_name="x", basic_blocks=(blocks[0], blocks[0]))

    def test_dixie_without_validation(self, triad_program):
        trace = Dixie(validate=False).instrument(triad_program)
        assert trace.block_trace
