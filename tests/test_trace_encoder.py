"""Tests for trace-file serialization and parsing."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace.dixie import trace_program
from repro.trace.encoder import dump_trace, dumps_trace, load_trace, loads_trace
from repro.trace.stream import TraceStream


class TestTraceSerialization:
    def test_text_roundtrip(self, triad_program):
        trace = trace_program(triad_program)
        text = dumps_trace(trace)
        parsed = loads_trace(text)
        assert parsed.program_name == trace.program_name
        assert parsed.block_trace == trace.block_trace
        assert parsed.vl_trace == trace.vl_trace
        assert parsed.stride_trace == trace.stride_trace
        assert parsed.memref_trace == trace.memref_trace

    def test_roundtrip_preserves_dynamic_stream(self, triad_program):
        trace = trace_program(triad_program)
        parsed = loads_trace(dumps_trace(trace))
        assert list(TraceStream(parsed)) == list(TraceStream(trace))

    def test_file_roundtrip(self, tmp_path, scalar_program):
        trace = trace_program(scalar_program)
        path = dump_trace(trace, tmp_path / "scalar.trace")
        assert path.exists()
        loaded = load_trace(path)
        assert loaded.block_trace == trace.block_trace
        assert list(TraceStream(loaded)) == list(TraceStream(trace))

    def test_document_sections_present(self, triad_program):
        text = dumps_trace(trace_program(triad_program))
        for section in ("%program", "%blocks", "%block-trace", "%vl-trace",
                        "%stride-trace", "%memref-trace"):
            assert section in text

    def test_missing_section_rejected(self, triad_program):
        text = dumps_trace(trace_program(triad_program))
        broken = text.replace("%vl-trace", "%vl-hidden")
        with pytest.raises(TraceError):
            loads_trace(broken)

    def test_malformed_block_header_rejected(self):
        text = "\n".join(
            [
                "%program x",
                "%blocks",
                "@block",
                "%block-trace",
                "",
                "%vl-trace",
                "",
                "%stride-trace",
                "",
                "%memref-trace",
                "",
            ]
        )
        with pytest.raises(TraceError):
            loads_trace(text)

    def test_instruction_outside_block_rejected(self):
        text = "\n".join(
            [
                "%program x",
                "%blocks",
                "nop",
                "%block-trace",
                "",
                "%vl-trace",
                "",
                "%stride-trace",
                "",
                "%memref-trace",
                "",
            ]
        )
        with pytest.raises(TraceError):
            loads_trace(text)

    def test_content_before_section_rejected(self):
        with pytest.raises(TraceError):
            loads_trace("garbage line\n%blocks\n")
