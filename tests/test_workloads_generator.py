"""Unit and property-based tests for the parameterized workload generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.generator import LoopSpec, WorkloadSpec, build_workload
from repro.workloads.stats import measure_program


def simple_spec(**overrides):
    defaults = dict(
        name="custom",
        vector_instructions=300,
        scalar_instructions=200,
        loops=(LoopSpec("triad", 64, 0.6), LoopSpec("dot_reduce", 32, 0.4)),
        scalar_loop_fraction=0.3,
        outer_passes=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestWorkloadSpecValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            simple_spec(vector_instructions=-1)

    def test_vector_without_loops_rejected(self):
        with pytest.raises(WorkloadError):
            simple_spec(loops=())

    def test_bad_scalar_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            simple_spec(scalar_loop_fraction=1.5)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            simple_spec(loops=(LoopSpec("triad", 64, 0.3),))

    def test_bad_loop_spec(self):
        with pytest.raises(WorkloadError):
            LoopSpec("triad", 0, 1.0)
        with pytest.raises(WorkloadError):
            LoopSpec("triad", 64, 0.0)

    def test_expected_average_vl(self):
        spec = simple_spec()
        assert spec.expected_average_vl == pytest.approx(64 * 0.6 + 32 * 0.4)

    def test_expected_vectorization_monotone_in_vector_count(self):
        low = simple_spec(vector_instructions=100).expected_vectorization
        high = simple_spec(vector_instructions=1000).expected_vectorization
        assert high > low


class TestBuildWorkload:
    def test_counts_close_to_targets(self):
        spec = simple_spec(vector_instructions=500, scalar_instructions=400)
        stats = measure_program(build_workload(spec))
        assert stats.vector_instructions == pytest.approx(500, rel=0.15)
        assert stats.scalar_instructions == pytest.approx(400, rel=0.35)

    def test_average_vl_close_to_mix(self):
        spec = simple_spec()
        stats = measure_program(build_workload(spec))
        assert stats.average_vector_length == pytest.approx(spec.expected_average_vl, rel=0.1)

    def test_scalar_only_workload(self):
        spec = WorkloadSpec(
            name="scalar-only",
            vector_instructions=0,
            scalar_instructions=150,
            loops=(),
            scalar_loop_fraction=1.0,
        )
        stats = measure_program(build_workload(spec))
        assert stats.vector_instructions == 0
        assert stats.scalar_instructions == pytest.approx(150, rel=0.1)

    def test_kernel_mix_is_respected(self):
        spec = simple_spec(loops=(LoopSpec("gather_update", 32, 1.0),))
        stats = measure_program(build_workload(spec))
        assert stats.gather_scatter_instructions > 0

    def test_deterministic(self):
        spec = simple_spec()
        first = list(build_workload(spec).instructions())
        second = list(build_workload(spec).instructions())
        assert first == second

    def test_empty_workload_rejected(self):
        spec = WorkloadSpec(
            name="empty",
            vector_instructions=0,
            scalar_instructions=3,
            loops=(),
        )
        with pytest.raises(WorkloadError):
            build_workload(spec)


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        vector=st.integers(min_value=50, max_value=800),
        scalar=st.integers(min_value=50, max_value=800),
        vl=st.integers(min_value=4, max_value=128),
    )
    def test_generated_workloads_are_well_formed(self, vector, scalar, vl):
        spec = WorkloadSpec(
            name="prop",
            vector_instructions=vector,
            scalar_instructions=scalar,
            loops=(LoopSpec("triad", vl, 1.0),),
            scalar_loop_fraction=0.3,
        )
        program = build_workload(spec)
        stats = measure_program(program)
        # every vector instruction carries the requested vector length
        assert stats.average_vector_length == pytest.approx(vl, rel=0.01)
        # the stream is non-empty and dominated by the requested mix
        assert stats.total_instructions > 0
        assert stats.vector_instructions > 0

    @settings(max_examples=10, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_scalar_loop_fraction_never_breaks_generation(self, fraction):
        spec = WorkloadSpec(
            name="prop2",
            vector_instructions=200,
            scalar_instructions=300,
            loops=(LoopSpec("stencil3", 48, 1.0),),
            scalar_loop_fraction=fraction,
        )
        stats = measure_program(build_workload(spec))
        assert stats.scalar_instructions > 0
