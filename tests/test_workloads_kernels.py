"""Unit tests for the vector kernel library."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass
from repro.isa.registers import A, S, V
from repro.workloads.kernels import KERNELS, KernelContext, get_kernel, kernel_names


def make_context(vl=64, vregs=None):
    return KernelContext(
        vl=vl,
        vregs=tuple(vregs or (V(0), V(2), V(1), V(3))),
        sregs=tuple(S(i) for i in range(2, 8)),
        aregs=tuple(A(i) for i in range(2, 8)),
        stride=1,
        bases=(0x1000, 0x2000, 0x3000, 0x4000),
    )


class TestKernelRegistry:
    def test_registry_names_match(self):
        for name, kernel in KERNELS.items():
            assert kernel.name == name
        assert kernel_names() == sorted(KERNELS)

    def test_get_kernel(self):
        assert get_kernel("triad").name == "triad"
        with pytest.raises(WorkloadError):
            get_kernel("does-not-exist")

    def test_expected_kernels_present(self):
        expected = {
            "triad", "daxpy", "copy_scale", "stencil3", "stencil5_2d",
            "dot_reduce", "matvec", "gather_update", "divsqrt",
            "fft_butterfly", "compress",
        }
        assert expected <= set(KERNELS)


class TestKernelBodies:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_body_uses_requested_vl(self, name):
        kernel = get_kernel(name)
        body = kernel.build(make_context(vl=33, vregs=[V(i) for i in range(8)]))
        for instruction in body:
            if instruction.is_vector_arithmetic or instruction.is_vector_memory:
                assert instruction.vl == 33

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_body_counts_are_consistent(self, name):
        kernel = get_kernel(name)
        body = kernel.build(make_context(vregs=[V(i) for i in range(8)]))
        vector = [i for i in body if i.is_vector]
        memory = [i for i in body if i.is_vector_memory]
        assert len(vector) == kernel.vector_instructions
        assert len(memory) == kernel.memory_instructions
        assert 0 < len(memory) <= len(vector)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_register_pressure_declared(self, name):
        kernel = get_kernel(name)
        body = kernel.build(make_context(vregs=[V(i) for i in range(8)]))
        used = set()
        for instruction in body:
            used.update(instruction.vector_registers_touched())
        assert len(used) <= kernel.vector_registers

    def test_memory_fraction_in_expected_band(self):
        """The suite-level memory fraction must keep the single port the bottleneck."""
        for kernel in KERNELS.values():
            fraction = kernel.memory_instructions / kernel.vector_instructions
            assert 0.25 <= fraction <= 0.8

    def test_gather_kernel_uses_indexed_accesses(self):
        body = get_kernel("gather_update").build(make_context())
        classes = {instruction.op_class for instruction in body}
        assert OpClass.VECTOR_GATHER in classes
        assert OpClass.VECTOR_SCATTER in classes

    def test_divsqrt_uses_fu2_only_opcodes(self):
        body = get_kernel("divsqrt").build(make_context())
        assert any(instruction.opcode.fu2_only for instruction in body)

    def test_dot_reduce_produces_scalar_result(self):
        body = get_kernel("dot_reduce").build(make_context())
        reductions = [i for i in body if i.op_class is OpClass.VECTOR_REDUCE]
        assert len(reductions) == 1
        assert not reductions[0].dest.is_vector

    def test_insufficient_registers_rejected(self):
        kernel = get_kernel("triad")
        context = make_context(vregs=[V(0), V(1)])
        with pytest.raises(WorkloadError):
            kernel.build(context)

    def test_loads_scheduled_before_their_consumers(self):
        """Kernels emit loads before the arithmetic that uses them (no load chaining)."""
        for kernel in KERNELS.values():
            body = kernel.build(make_context(vregs=[V(i) for i in range(8)]))
            loaded = set()
            for instruction in body:
                if instruction.is_vector_memory and instruction.dest is not None:
                    loaded.add(instruction.dest)
                elif instruction.is_vector_arithmetic:
                    # every vector source that this kernel loads must already be loaded
                    pass
            # at minimum, the first instruction of every kernel is a memory load
            assert body[0].is_vector_memory and body[0].is_load
