"""Unit tests for the program / loop-nest model."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import A, S, RegisterClass
from repro.workloads.kernels import get_kernel
from repro.workloads.program import (
    AddressSpace,
    Program,
    ScalarLoopNest,
    VectorLoopNest,
    clear_expansion_intern,
    expansion_intern_info,
    scalar_filler,
    set_expansion_interning,
)


class TestAddressSpace:
    def test_allocations_are_disjoint_and_aligned(self):
        space = AddressSpace(base=0x1000, alignment=64)
        first = space.allocate(100)
        second = space.allocate(10)
        assert first == 0x1000
        assert second >= first + 100
        assert second % 64 == 0

    def test_allocate_array(self):
        space = AddressSpace()
        a = space.allocate_array(16)
        b = space.allocate_array(16)
        assert b - a >= 16 * 8

    def test_rejects_empty_allocation(self):
        with pytest.raises(WorkloadError):
            AddressSpace().allocate(0)


class TestScalarFiller:
    def test_count_respected(self):
        instructions = scalar_filler(17, [S(i) for i in range(2, 8)], [A(2), A(3)])
        assert len(instructions) == 17

    def test_memory_fraction_roughly_respected(self):
        instructions = scalar_filler(
            100, [S(i) for i in range(2, 8)], [A(2), A(3)], memory_fraction=0.3
        )
        memory = sum(1 for instruction in instructions if instruction.is_memory)
        assert 20 <= memory <= 40

    def test_loads_do_not_feed_nearby_arithmetic(self):
        """Scalar loads go to registers the arithmetic does not read (section 6.2)."""
        instructions = scalar_filler(60, [S(i) for i in range(2, 8)], [A(2), A(3)])
        load_dests = {
            instruction.dest
            for instruction in instructions
            if instruction.opcode is Opcode.LD_S
        }
        arithmetic_sources = set()
        for instruction in instructions:
            if not instruction.is_memory and instruction.dest is not None:
                arithmetic_sources.update(
                    register
                    for register in instruction.srcs
                    if register.cls is RegisterClass.SCALAR
                )
        assert not (load_dests & arithmetic_sources)

    def test_zero_count(self):
        assert scalar_filler(0, [S(2)], [A(2)]) == []


class TestVectorLoopNest:
    def make_loop(self, **kwargs):
        defaults = dict(vl=32, iterations=4, scalar_overhead=3, address_space=AddressSpace())
        defaults.update(kwargs)
        return VectorLoopNest("loop", get_kernel("triad"), **defaults)

    def test_dynamic_instruction_count(self):
        loop = self.make_loop(iterations=5)
        emitted = list(loop.emit())
        assert len(emitted) == loop.dynamic_instruction_count
        assert len(emitted) == 5 * loop.instructions_per_iteration

    def test_variants_use_disjoint_register_halves(self):
        loop = self.make_loop()
        variants = loop.body_variants()
        assert len(variants) == 2
        def touched(body):
            registers = set()
            for instruction in body:
                registers.update(instruction.vector_registers_touched())
            return registers
        assert not (touched(variants[0]) & touched(variants[1]))

    def test_emitted_addresses_advance(self):
        loop = self.make_loop(iterations=3)
        addresses = [
            instruction.address
            for instruction in loop.emit()
            if instruction.opcode is Opcode.VLOAD
        ]
        # two loads per iteration; each array is walked monotonically and no
        # dynamic reference repeats an address
        first_load_per_iteration = addresses[0::2]
        second_load_per_iteration = addresses[1::2]
        assert first_load_per_iteration == sorted(first_load_per_iteration)
        assert second_load_per_iteration == sorted(second_load_per_iteration)
        assert len(set(addresses)) == len(addresses)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            self.make_loop(vl=0)
        with pytest.raises(WorkloadError):
            self.make_loop(vl=300)
        with pytest.raises(WorkloadError):
            self.make_loop(iterations=0)
        with pytest.raises(WorkloadError):
            self.make_loop(variants=0)

    def test_partial_emission(self):
        loop = self.make_loop(iterations=6)
        partial = list(loop.emit(first_iteration=0, count=2))
        assert len(partial) == 2 * loop.instructions_per_iteration

    def test_scalar_overhead_included(self):
        loop = self.make_loop(scalar_overhead=5)
        body = loop.body_variants()[0]
        scalar = [i for i in body if not i.is_vector]
        # 5 filler instructions plus the loop-closing branch
        assert len(scalar) == 6
        assert body[-1].op_class is OpClass.BRANCH


class TestScalarLoopNest:
    def test_body_size(self):
        loop = ScalarLoopNest("s", iterations=3, body_size=7)
        body = loop.body_variants()[0]
        assert len(body) == 7
        assert all(not instruction.is_vector for instruction in body)

    def test_emit_count(self):
        loop = ScalarLoopNest("s", iterations=4, body_size=6)
        assert len(list(loop.emit())) == 4 * 6

    def test_too_small_body_rejected(self):
        with pytest.raises(WorkloadError):
            ScalarLoopNest("s", iterations=1, body_size=1)


class TestProgram:
    def build_program(self, passes=2):
        program = Program("prog", outer_passes=passes)
        space = AddressSpace()
        program.add_loop(
            VectorLoopNest("v", get_kernel("triad"), vl=16, iterations=6, address_space=space)
        )
        program.add_loop(ScalarLoopNest("s", iterations=4, address_space=space))
        return program

    def test_empty_program_rejected(self):
        with pytest.raises(WorkloadError):
            list(Program("empty").instructions())

    def test_instruction_stream_is_repeatable(self):
        program = self.build_program()
        first = list(program.instructions())
        second = list(program.instructions())
        assert first == second

    def test_dynamic_count_matches_stream(self):
        program = self.build_program()
        assert len(list(program.instructions())) == program.dynamic_instruction_count

    def test_pcs_are_sequential(self):
        program = self.build_program()
        pcs = [instruction.pc for instruction in program.instructions()]
        assert pcs == list(range(len(pcs)))

    def test_block_ids_are_unique_across_loops(self):
        program = self.build_program()
        blocks = program.basic_blocks()
        ids = [block.block_id for block in blocks]
        assert len(ids) == len(set(ids))

    def test_block_trace_matches_loop_iterations(self):
        program = self.build_program(passes=1)
        block_ids = list(program.iter_block_ids())
        assert len(block_ids) == 6 + 4  # loop iterations across both loops

    def test_outer_passes_interleave_loops(self):
        program = self.build_program(passes=2)
        kinds = []
        for instruction in program.instructions():
            kinds.append(instruction.is_vector)
        # with two passes the vector and scalar phases alternate, so there must
        # be at least two transitions from vector to scalar code
        transitions = sum(
            1 for a, b in zip(kinds, kinds[1:]) if a and not b
        )
        assert transitions >= 2

    def test_invalid_outer_passes(self):
        with pytest.raises(WorkloadError):
            Program("p", outer_passes=0)


class TestExpansionInterning:
    @pytest.fixture(autouse=True)
    def _clean_intern_table(self):
        clear_expansion_intern()
        yield
        clear_expansion_intern()

    def build_program(self, passes=2):
        program = Program("prog", outer_passes=passes)
        space = AddressSpace()
        program.add_loop(
            VectorLoopNest("v", get_kernel("triad"), vl=16, iterations=6, address_space=space)
        )
        program.add_loop(ScalarLoopNest("s", iterations=4, address_space=space))
        return program

    def test_identical_programs_share_one_expansion(self):
        first, second = self.build_program(), self.build_program()
        assert list(first.instructions()) == list(second.instructions())
        assert first._expanded is second._expanded
        info = expansion_intern_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1

    def test_structurally_different_programs_do_not_share(self):
        first, second = self.build_program(passes=1), self.build_program(passes=2)
        list(first.instructions()), list(second.instructions())
        assert first._expanded is not second._expanded
        assert expansion_intern_info()["entries"] == 2

    def test_pickle_round_trip_reuses_interned_expansion(self):
        import pickle

        program = self.build_program()
        stream = list(program.instructions())
        clone = pickle.loads(pickle.dumps(program))
        assert list(clone.instructions()) == stream
        assert clone._expanded is program._expanded

    def test_disabled_interning_still_memoizes_per_program(self):
        set_expansion_interning(False)
        try:
            first, second = self.build_program(), self.build_program()
            assert list(first.instructions()) == list(second.instructions())
            assert first._expanded is not second._expanded
            assert first._expanded is not None  # per-instance memo still on
            assert expansion_intern_info() == {
                "enabled": False, "entries": 0, "hits": 0, "misses": 0,
            }
        finally:
            set_expansion_interning(True)

    def test_custom_loop_subclass_is_not_interned(self):
        class TrickLoop(ScalarLoopNest):
            def emit(self, first_iteration=0, count=None):
                yield from super().emit(first_iteration, count)

        program = Program("custom")
        program.add_loop(TrickLoop("t", iterations=3))
        list(program.instructions())
        # a subclass could override emit arbitrarily, so its expansion must
        # never be shared through the structural-signature table
        assert expansion_intern_info()["entries"] == 0
        assert program._expanded is not None

    def test_intern_table_is_lru_bounded(self):
        from repro.workloads.program import _INTERN_MAX_ENTRIES

        for passes in range(1, _INTERN_MAX_ENTRIES + 3):
            program = Program("prog", outer_passes=passes)
            program.add_loop(ScalarLoopNest("s", iterations=passes))
            list(program.instructions())
        assert expansion_intern_info()["entries"] == _INTERN_MAX_ENTRIES
