"""Unit tests for workload statistics measurement."""

from __future__ import annotations

import pytest

from repro.isa.builder import branch, scalar_load, scalar_op, vadd, vload, vmul, vreduce, vstore
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import A, S, V
from repro.workloads.stats import ProgramStats, measure_program, measure_stream


def small_stream():
    return [
        vload(V(0), vl=10, address=0x100),
        vload(V(1), vl=10, address=0x200),
        vmul(V(2), V(0), V(1), vl=10),
        vadd(V(3), V(2), V(0), vl=10),
        vstore(V(3), A(0), vl=10, address=0x300),
        scalar_load(S(0), address=0x400),
        scalar_op(Opcode.ADD_S, S(1), S(0), S(2)),
        branch(S(1)),
    ]


class TestMeasureStream:
    def test_instruction_counts(self):
        stats = measure_stream(small_stream(), name="tiny")
        assert stats.name == "tiny"
        assert stats.vector_instructions == 5
        assert stats.scalar_instructions == 3
        assert stats.total_instructions == 8

    def test_operation_counts(self):
        stats = measure_stream(small_stream())
        assert stats.vector_operations == 50
        assert stats.vector_arithmetic_operations == 20
        assert stats.vector_memory_transactions == 30
        assert stats.scalar_memory_instructions == 1
        assert stats.memory_transactions == 31

    def test_vectorization_definition(self):
        """Vectorization = vector ops / (vector ops + scalar instructions) (section 4.2)."""
        stats = measure_stream(small_stream())
        assert stats.vectorization == pytest.approx(100.0 * 50 / (50 + 3))

    def test_average_vector_length(self):
        stats = measure_stream(small_stream())
        assert stats.average_vector_length == pytest.approx(10.0)

    def test_memory_fraction(self):
        stats = measure_stream(small_stream())
        assert stats.vector_memory_fraction == pytest.approx(3 / 5)

    def test_empty_stream(self):
        stats = measure_stream([])
        assert stats.total_instructions == 0
        assert stats.vectorization == 0.0
        assert stats.average_vector_length == 0.0

    def test_op_class_histogram(self):
        stats = measure_stream(small_stream())
        assert stats.op_class_counts[OpClass.VECTOR_LOAD] == 2
        assert stats.op_class_counts[OpClass.VECTOR_STORE] == 1
        assert stats.op_class_counts[OpClass.BRANCH] == 1

    def test_reduction_counts_as_arithmetic(self):
        stats = measure_stream([vreduce(S(0), V(1), vl=16)])
        assert stats.vector_arithmetic_operations == 16
        assert stats.vector_memory_instructions == 0

    def test_fu2_only_counter(self):
        stats = measure_stream(small_stream())
        assert stats.fu2_only_instructions == 1  # the vmul

    def test_as_table_row(self):
        row = measure_stream(small_stream(), name="tiny").as_table_row()
        assert row["program"] == "tiny"
        assert row["vector_instructions"] == 5
        assert "vectorization_pct" in row and "average_vl" in row


class TestMeasureProgram:
    def test_program_measurement_matches_stream(self, triad_program):
        from_program = measure_program(triad_program)
        from_stream = measure_stream(triad_program.instructions())
        assert from_program.total_instructions == from_stream.total_instructions
        assert from_program.vector_operations == from_stream.vector_operations
        assert from_program.name == triad_program.name
