"""Tests for the ten-benchmark synthetic suite (regenerates Table 3)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    BENCHMARK_ORDER,
    BENCHMARK_PROFILES,
    FIXED_WORKLOAD_ORDER,
    get_profile,
    profile_names,
)
from repro.workloads.stats import measure_program
from repro.workloads.suite import (
    INSTRUCTIONS_PER_MILLION,
    build_benchmark,
    build_suite,
    spec_for_profile,
)


class TestProfiles:
    def test_ten_programs(self):
        assert len(BENCHMARK_ORDER) == 10
        assert set(BENCHMARK_ORDER) == set(BENCHMARK_PROFILES)
        assert profile_names() == BENCHMARK_ORDER

    def test_fixed_workload_order_is_a_permutation(self):
        assert sorted(FIXED_WORKLOAD_ORDER) == sorted(BENCHMARK_ORDER)
        # the paper's order: TF, SW, SU, TI, TO, A7, HY, NA, SR, SD
        assert FIXED_WORKLOAD_ORDER[0] == "flo52"
        assert FIXED_WORKLOAD_ORDER[1] == "swm256"
        assert FIXED_WORKLOAD_ORDER[-1] == "dyfesm"

    def test_short_name_lookup(self):
        assert get_profile("sw").name == "swm256"
        assert get_profile("sd").name == "dyfesm"
        with pytest.raises(WorkloadError):
            get_profile("zz")

    def test_profiles_are_highly_vectorizable(self):
        """The paper only selects programs with >= ~70% vectorization."""
        for profile in BENCHMARK_PROFILES.values():
            assert profile.paper_vectorization >= 70.0

    def test_loop_mix_average_vl_matches_table3(self):
        for profile in BENCHMARK_PROFILES.values():
            assert profile.mix_average_vl == pytest.approx(profile.paper_average_vl, rel=0.08)

    def test_paper_table_values(self):
        swm = get_profile("swm256")
        assert swm.paper_vectorization == pytest.approx(99.9, abs=0.1)
        assert swm.paper_average_vl == pytest.approx(128, abs=1.5)
        trfd = get_profile("trfd")
        assert trfd.paper_vectorization == pytest.approx(75.7, abs=0.3)
        assert trfd.paper_average_vl == pytest.approx(22.1, abs=0.3)


class TestSuiteBuilders:
    def test_spec_scaling(self):
        profile = get_profile("hydro2d")
        small = spec_for_profile(profile, scale=0.1)
        large = spec_for_profile(profile, scale=1.0)
        assert large.vector_instructions > small.vector_instructions
        assert large.vector_instructions == pytest.approx(
            profile.vector_minsns * INSTRUCTIONS_PER_MILLION, rel=0.01
        )

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            build_benchmark("swm256", scale=0.0)

    def test_build_suite_default_is_all_ten(self, tiny_suite):
        assert set(tiny_suite) == set(BENCHMARK_ORDER)

    def test_build_suite_subset(self):
        programs = build_suite(["swm256", "trfd"], scale=0.05)
        assert set(programs) == {"swm256", "trfd"}

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_table3_vectorization_and_vl_reproduced(self, small_suite, name):
        """The synthetic programs match Table 3's vectorization %% and average VL."""
        stats = measure_program(small_suite[name])
        profile = get_profile(name)
        assert stats.vectorization == pytest.approx(profile.paper_vectorization, abs=3.0)
        assert stats.average_vector_length == pytest.approx(profile.paper_average_vl, rel=0.12)

    def test_relative_program_sizes_follow_table3(self, small_suite):
        """Bigger Table 3 programs produce bigger synthetic programs."""
        sizes = {
            name: measure_program(program).total_instructions
            for name, program in small_suite.items()
        }
        assert sizes["trfd"] > sizes["swm256"]
        assert sizes["nasa7"] > sizes["flo52"]
        assert sizes["dyfesm"] > sizes["bdna"]

    def test_scalar_to_vector_ratio_tracks_table3(self, tiny_suite):
        stats = measure_program(tiny_suite["tomcatv"])
        # tomcatv has far more scalar than vector instructions (125.8M vs 7.2M)
        assert stats.scalar_instructions > 5 * stats.vector_instructions
        stats_sw = measure_program(tiny_suite["swm256"])
        assert stats_sw.vector_instructions > stats_sw.scalar_instructions
